#include "verify/plan_verifier.hpp"

#include <algorithm>
#include <sstream>

#include "circuit/gate.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "sched/order.hpp"
#include "sched/tree.hpp"
#include "trial/frame.hpp"

namespace rqsim {

// --------------------------------------------------------------------------
// PlanRecorder

void PlanRecorder::on_advance(std::size_t depth, layer_index_t from_layer,
                              layer_index_t to_layer) {
  PlanOp op;
  op.kind = PlanOpKind::kAdvance;
  op.depth = static_cast<std::uint32_t>(depth);
  op.from = from_layer;
  op.to = to_layer;
  plan_.push_back(op);
}

void PlanRecorder::on_fork(std::size_t depth) {
  PlanOp op;
  op.kind = PlanOpKind::kFork;
  op.depth = static_cast<std::uint32_t>(depth);
  plan_.push_back(op);
}

void PlanRecorder::on_error(std::size_t depth, const ErrorEvent& event) {
  PlanOp op;
  op.kind = PlanOpKind::kError;
  op.depth = static_cast<std::uint32_t>(depth);
  op.event = event;
  plan_.push_back(op);
}

void PlanRecorder::on_finish(std::size_t depth, trial_index_t trial_index,
                             const Trial& trial) {
  (void)trial;
  PlanOp op;
  op.kind = PlanOpKind::kFinish;
  op.depth = static_cast<std::uint32_t>(depth);
  op.trial = trial_index;
  plan_.push_back(op);
}

void PlanRecorder::on_drop(std::size_t depth) {
  PlanOp op;
  op.kind = PlanOpKind::kDrop;
  op.depth = static_cast<std::uint32_t>(depth);
  plan_.push_back(op);
}

// --------------------------------------------------------------------------
// Independent op-count model

namespace {

/// Ops a lone trial costs when replayed from a checkpoint at `frontier`
/// with its first `event_depth` events already injected.
opcount_t replay_ops(const CircuitContext& ctx, const Trial& trial,
                     std::size_t event_depth, layer_index_t frontier) {
  opcount_t ops = 0;
  layer_index_t f = frontier;
  for (std::size_t k = event_depth; k < trial.events.size(); ++k) {
    const layer_index_t target = trial.events[k].layer + 1;
    if (target > f) {
      ops += ctx.ops_in_layers(f, target);
      f = target;
    }
    ops += 1;
  }
  const auto total = static_cast<layer_index_t>(ctx.num_layers());
  if (total > f) {
    ops += ctx.ops_in_layers(f, total);
  }
  return ops;
}

/// Mirror of TreeBuilder::try_collapse_group's decision: the group
/// [begin, end) branching at `event_depth` collapses iff every trial's
/// remaining errors push to the end of the circuit as a pure Pauli frame
/// satisfying the purity rules. The *decision* intentionally reuses the
/// builder's propagation (the model must predict the builder's op count
/// exactly); the *soundness* of each recorded frame is established
/// separately by verify_tree_plan's numeric frame-algebra pass.
bool model_group_collapses(const CircuitContext& ctx, const std::vector<Trial>& trials,
                           const ScheduleOptions& options, std::size_t begin,
                           std::size_t end, std::size_t event_depth,
                           std::uint64_t measured_mask) {
  for (std::size_t t = begin; t != end; ++t) {
    const FramePropagation p =
        propagate_frame_to_end(ctx.circuit, ctx.layering, trials[t], event_depth);
    if (!p.ok || !frame_x_confined_to(p.frame, measured_mask) ||
        (options.frame_observables && p.frame.x != 0)) {
      return false;
    }
  }
  return true;
}

/// Counting model of the reorder+cache recursion over the group
/// [begin, end) of trials sharing their first `event_depth` events, with
/// the shared checkpoint advanced through `frontier` layers.
opcount_t model_group_ops(const CircuitContext& ctx, const std::vector<Trial>& trials,
                          const ScheduleOptions& options, std::size_t begin,
                          std::size_t end, std::size_t event_depth, std::size_t depth,
                          layer_index_t frontier, std::uint64_t measured_mask) {
  opcount_t ops = 0;
  std::size_t i = begin;
  bool collapsed_any = false;
  while (i != end && trials[i].events.size() > event_depth) {
    const ErrorEvent event = trials[i].events[event_depth];
    std::size_t j = i + 1;
    while (j != end && trials[j].events.size() > event_depth &&
           trials[j].events[event_depth] == event) {
      ++j;
    }
    if (options.frame_collapse &&
        model_group_collapses(ctx, trials, options, i, j, event_depth,
                              measured_mask)) {
      // No advance to the branch point, no injection, no subtree ops; the
      // group's trials finish on this node's final advance below.
      collapsed_any = true;
      i = j;
      continue;
    }
    const layer_index_t target = event.layer + 1;
    if (target > frontier) {
      ops += ctx.ops_in_layers(frontier, target);
      frontier = target;
    }
    if (j - i == 1) {
      ops += replay_ops(ctx, trials[i], event_depth, frontier);
    } else if (options.max_states == 0 || depth + 2 < options.max_states) {
      ops += 1;  // the shared error injection
      ops += model_group_ops(ctx, trials, options, i, j, event_depth + 1, depth + 1,
                             frontier, measured_mask);
    } else {
      for (std::size_t t = i; t != j; ++t) {
        ops += replay_ops(ctx, trials[t], event_depth, frontier);
      }
    }
    i = j;
  }
  if (i != end || collapsed_any) {
    const auto total = static_cast<layer_index_t>(ctx.num_layers());
    if (total > frontier) {
      ops += ctx.ops_in_layers(frontier, total);
    }
  }
  return ops;
}

std::uint64_t circuit_measured_mask(const Circuit& circuit) {
  std::uint64_t mask = 0;
  for (const qubit_t q : circuit.measured_qubits()) {
    mask |= std::uint64_t{1} << q;
  }
  return mask;
}

}  // namespace

opcount_t predict_cached_ops(const CircuitContext& ctx, const std::vector<Trial>& trials,
                             const ScheduleOptions& options) {
  if (trials.empty()) {
    return 0;
  }
  const std::uint64_t measured_mask =
      options.frame_collapse ? circuit_measured_mask(ctx.circuit) : 0;
  return model_group_ops(ctx, trials, options, 0, trials.size(), /*event_depth=*/0,
                         /*depth=*/0, /*frontier=*/0, measured_mask);
}

// --------------------------------------------------------------------------
// PlanVerifier

namespace {

const char* kind_name(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kAdvance: return "advance";
    case PlanOpKind::kFork: return "fork";
    case PlanOpKind::kError: return "error";
    case PlanOpKind::kFinish: return "finish";
    case PlanOpKind::kDrop: return "drop";
  }
  return "?";
}

/// First trial a stream corruption at plan op `k` would poison: the next
/// finish at or after `k` (trials already finished are untouched).
std::size_t next_finished_trial(const std::vector<PlanOp>& plan, std::size_t k) {
  for (std::size_t i = k; i < plan.size(); ++i) {
    if (plan[i].kind == PlanOpKind::kFinish) {
      return static_cast<std::size_t>(plan[i].trial);
    }
  }
  return kNoIndex;
}

// ---- Numeric frame algebra ----
//
// Re-derives every recorded Pauli frame by explicit matrix conjugation:
// a gate G rewrites the frame's restriction P to G·P·G†, which must equal
// some Pauli P' up to a unit phase or the gate *blocks* the frame. This
// shares nothing with the PauliConjugation lookup tables the tree builder
// used (circuit/gate.cpp), so a corrupted table — or a frame forced past a
// non-Clifford gate — cannot vouch for itself.

/// 2-bit frame code (x | z<<1) to its Pauli matrix.
Mat2 pauli_code_matrix(unsigned code) {
  switch (code & 3u) {
    case 0: return pauli_matrix(Pauli::I);
    case 1: return pauli_matrix(Pauli::X);
    case 2: return pauli_matrix(Pauli::Z);
    default: return pauli_matrix(Pauli::Y);
  }
}

/// c == phase · p for some unit-modulus phase, within tolerance? Pauli
/// matrix entries are 0 or unit modulus, so any entry with |p| > 0.5
/// determines the candidate phase.
template <typename Mat>
bool equals_pauli_up_to_phase(const Mat& c, const Mat& p) {
  cplx phase(0.0, 0.0);
  for (std::size_t k = 0; k < p.m.size(); ++k) {
    if (std::abs(p.m[k]) > 0.5) {
      phase = c.m[k] / p.m[k];
      break;
    }
  }
  if (std::abs(std::abs(phase) - 1.0) > 1e-9) {
    return false;
  }
  return frobenius_distance(c, p * phase) < 1e-9;
}

/// G·P·G† for a single-qubit gate: output code, or -1 if the result is not
/// a Pauli up to phase (the gate blocks the frame).
int conjugate1_numeric(const Gate& gate, unsigned in_code) {
  const Mat2 u = gate_matrix1(gate);
  const Mat2 c = u * pauli_code_matrix(in_code) * u.dagger();
  for (unsigned out = 0; out < 4; ++out) {
    if (equals_pauli_up_to_phase(c, pauli_code_matrix(out))) {
      return static_cast<int>(out);
    }
  }
  return -1;
}

/// Two-qubit version. `in_code` layout matches trial/frame.cpp: bits 0-1
/// are qubits[0]'s (x, z), bits 2-3 qubits[1]'s. gate_matrix2 indexes
/// qubits[0] as the high-order bit, so kron's first factor is qubits[0]'s
/// Pauli.
int conjugate2_numeric(const Gate& gate, unsigned in_code) {
  const Mat4 u = gate_matrix2(gate);
  const Mat4 p = kron(pauli_code_matrix(in_code & 3u),
                      pauli_code_matrix((in_code >> 2) & 3u));
  const Mat4 c = u * p * u.dagger();
  for (unsigned a = 0; a < 4; ++a) {
    for (unsigned b = 0; b < 4; ++b) {
      if (equals_pauli_up_to_phase(
              c, kron(pauli_code_matrix(a), pauli_code_matrix(b)))) {
        return static_cast<int>(a | (b << 2));
      }
    }
  }
  return -1;
}

struct NumericFrame {
  bool ok = true;
  std::string diagnostic;  // set when !ok
  PauliFrame frame;
  opcount_t frame_ops = 0;
};

/// Re-propagate trial.events[event_depth..] to the end of the circuit with
/// numeric conjugation. The walk order (gates of layer L, then the errors
/// hosted at layer L's boundary) matches the scheduler's event semantics;
/// the per-gate algebra is the independent part.
NumericFrame derive_frame_numeric(const CircuitContext& ctx, const Trial& trial,
                                  std::size_t event_depth) {
  NumericFrame r;
  const std::size_t num_events = trial.events.size();
  if (event_depth >= num_events) {
    return r;
  }
  std::size_t ei = event_depth;
  const std::size_t num_layers = ctx.num_layers();
  for (std::size_t layer = trial.events[ei].layer; layer < num_layers; ++layer) {
    for (const gate_index_t g : ctx.layering.layers[layer]) {
      const Gate& gate = ctx.circuit.gates()[g];
      const int arity = gate.arity();
      std::uint64_t support = 0;
      for (int q = 0; q < arity; ++q) {
        support |= std::uint64_t{1} << gate.qubits[static_cast<std::size_t>(q)];
      }
      if ((r.frame.support() & support) == 0) {
        continue;  // disjoint tensor factors commute; not billed
      }
      ++r.frame_ops;
      if (arity == 1) {
        const qubit_t q = gate.qubits[0];
        const unsigned in = static_cast<unsigned>((r.frame.x >> q) & 1u) |
                            static_cast<unsigned>((r.frame.z >> q) & 1u) << 1;
        const int out = conjugate1_numeric(gate, in);
        if (out < 0) {
          r.ok = false;
          r.diagnostic = "gate '" + gate_name(gate.kind) + "' at layer " +
                         std::to_string(layer) +
                         " blocks the frame (G·P·G† is not a Pauli)";
          return r;
        }
        const auto u = static_cast<unsigned>(out);
        r.frame.x = (r.frame.x & ~(std::uint64_t{1} << q)) |
                    static_cast<std::uint64_t>(u & 1u) << q;
        r.frame.z = (r.frame.z & ~(std::uint64_t{1} << q)) |
                    static_cast<std::uint64_t>(u >> 1) << q;
      } else if (arity == 2) {
        const qubit_t a = gate.qubits[0];
        const qubit_t b = gate.qubits[1];
        const unsigned in = static_cast<unsigned>((r.frame.x >> a) & 1u) |
                            static_cast<unsigned>((r.frame.z >> a) & 1u) << 1 |
                            static_cast<unsigned>((r.frame.x >> b) & 1u) << 2 |
                            static_cast<unsigned>((r.frame.z >> b) & 1u) << 3;
        const int out = conjugate2_numeric(gate, in);
        if (out < 0) {
          r.ok = false;
          r.diagnostic = "gate '" + gate_name(gate.kind) + "' at layer " +
                         std::to_string(layer) +
                         " blocks the frame (G·P·G† is not a Pauli)";
          return r;
        }
        const auto u = static_cast<unsigned>(out);
        const std::uint64_t clear =
            ~((std::uint64_t{1} << a) | (std::uint64_t{1} << b));
        r.frame.x = (r.frame.x & clear) |
                    static_cast<std::uint64_t>(u & 1u) << a |
                    static_cast<std::uint64_t>((u >> 2) & 1u) << b;
        r.frame.z = (r.frame.z & clear) |
                    static_cast<std::uint64_t>((u >> 1) & 1u) << a |
                    static_cast<std::uint64_t>((u >> 3) & 1u) << b;
      } else {
        r.ok = false;
        r.diagnostic = "gate '" + gate_name(gate.kind) + "' at layer " +
                       std::to_string(layer) +
                       " blocks the frame (frames do not cross 3-qubit gates)";
        return r;
      }
    }
    while (ei < num_events && trial.events[ei].layer == layer) {
      const PauliFrame ef = frame_from_event(ctx.circuit, trial.events[ei]);
      r.frame.x ^= ef.x;
      r.frame.z ^= ef.z;
      ++ei;
    }
  }
  if (ei != num_events) {
    r.ok = false;
    r.diagnostic = "event " + std::to_string(ei) +
                   " names a layer beyond the circuit's last layer";
  }
  return r;
}

/// Live checkpoint bookkeeping during the stream walk. `path_len` is the
/// number of error events on this checkpoint's ancestry (a prefix of the
/// shared `path` vector — forks copy by prefix, so one vector serves every
/// depth), `finishes` counts trials finished in this checkpoint's subtree.
/// `materialized` models the CoW executor's memory: a fork shares its
/// parent's buffer until the first write (advance or error) pays the copy.
struct DepthState {
  layer_index_t frontier = 0;
  std::size_t path_len = 0;
  std::uint64_t finishes = 0;
  bool materialized = false;
};

}  // namespace

PlanVerifier::PlanVerifier(const CircuitContext& ctx, const ScheduleOptions& options)
    : ctx_(ctx), options_(options) {
  RQSIM_CHECK(options.max_states == 0 || options.max_states >= 2,
              "PlanVerifier: max_states must be 0 (unlimited) or >= 2");
}

PlanProof PlanVerifier::verify(const std::vector<Trial>& trials,
                               const std::vector<PlanOp>& plan) const {
  return verify_impl(trials, plan, /*frame_prefix=*/nullptr);
}

PlanProof PlanVerifier::verify_impl(
    const std::vector<Trial>& trials, const std::vector<PlanOp>& plan,
    const std::vector<std::size_t>* frame_prefix) const {
  PlanProof proof;
  proof.num_trials = trials.size();
  proof.num_plan_ops = plan.size();
  proof.msv_budget = options_.max_states;

  const auto fail = [&proof](std::size_t op_index, std::size_t trial_index,
                             const std::string& message) -> const PlanProof& {
    proof.ok = false;
    proof.violating_op = op_index;
    proof.violating_trial = trial_index;
    proof.diagnostic = message;
    return proof;
  };

  const auto total_layers = static_cast<layer_index_t>(ctx_.num_layers());

  // ---- Invariant 1: trial well-formedness and lexicographic reorder
  // order, with "no-further-error" sorted after any further error.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const std::vector<ErrorEvent>& events = trials[i].events;
    for (std::size_t k = 0; k < events.size(); ++k) {
      if (events[k].layer >= total_layers) {
        return fail(kNoIndex, i,
                    "trial " + std::to_string(i) + " event " + std::to_string(k) +
                        " names layer " + std::to_string(events[k].layer) +
                        " but the circuit has only " + std::to_string(total_layers) +
                        " layers");
      }
      if (k > 0 && events[k] < events[k - 1]) {
        return fail(kNoIndex, i,
                    "trial " + std::to_string(i) +
                        " has unsorted error events (event " + std::to_string(k) +
                        " precedes event " + std::to_string(k - 1) + ")");
      }
    }
    if (i > 0 && trial_order_less(trials[i], trials[i - 1])) {
      return fail(kNoIndex, i,
                  "trial " + std::to_string(i) +
                      " is out of reorder order: it sorts before trial " +
                      std::to_string(i - 1) +
                      " (lexicographic over error events, exhausted-last)");
    }
  }

  // ---- Invariants 2 & 3: checkpoint stack discipline and the MSV bound,
  // walked over the recorded stream with per-trial path reconstruction.
  // The MSV budget is checked against *materialized* checkpoints: a fork
  // is free (CoW refcount bump) until its first write pays the copy, which
  // is exactly when the executor's banker accounting charges a token.
  std::vector<DepthState> stack(1);
  stack.front().materialized = true;  // the root state is allocated up front
  proof.materializations = 1;
  std::size_t materialized_live = 1;
  std::vector<ErrorEvent> path;  // shared by all depths; see DepthState
  std::vector<bool> finished(trials.size(), false);
  std::size_t finished_count = 0;

  // First write to an unmaterialized checkpoint: charge the copy against
  // the budget and record the high-water witness.
  const auto materialize_top = [&](std::size_t k) -> bool {
    if (stack.back().materialized) {
      return true;
    }
    stack.back().materialized = true;
    ++proof.materializations;
    ++materialized_live;
    if (materialized_live > proof.max_materialized_states) {
      proof.max_materialized_states = materialized_live;
      proof.materialization_witness_op = k;
    }
    return options_.max_states == 0 || materialized_live <= options_.max_states;
  };

  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlanOp& op = plan[k];
    const std::size_t top = stack.size() - 1;
    if (op.depth != top &&
        !(op.kind == PlanOpKind::kFinish && op.depth == top)) {
      return fail(k, next_finished_trial(plan, k),
                  std::string(kind_name(op.kind)) + " at plan op " +
                      std::to_string(k) + " targets checkpoint depth " +
                      std::to_string(op.depth) + " but the live stack top is depth " +
                      std::to_string(top) +
                      (op.depth > top ? " (use after drop)" : " (not the top)"));
    }
    switch (op.kind) {
      case PlanOpKind::kAdvance: {
        DepthState& state = stack.back();
        if (op.from != state.frontier) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) + " starts at layer " +
                          std::to_string(op.from) + " but checkpoint depth " +
                          std::to_string(op.depth) + " is advanced through layer " +
                          std::to_string(state.frontier) +
                          " (layers would be skipped or reapplied)");
        }
        if (op.to <= op.from || op.to > total_layers) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) + " has bad range [" +
                          std::to_string(op.from) + ", " + std::to_string(op.to) +
                          ") for a circuit with " + std::to_string(total_layers) +
                          " layers");
        }
        if (!materialize_top(k)) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) +
                          " materializes checkpoint depth " + std::to_string(op.depth) +
                          ", raising the live materialized count to " +
                          std::to_string(materialized_live) +
                          ", exceeding the MSV budget of " +
                          std::to_string(options_.max_states));
        }
        proof.cached_ops += ctx_.ops_in_layers(op.from, op.to);
        state.frontier = op.to;
        break;
      }
      case PlanOpKind::kFork: {
        // Forks are free under CoW — no copy, no token — so the budget is
        // not checked here; it is charged at the child's first write.
        DepthState child;
        child.frontier = stack.back().frontier;
        child.path_len = stack.back().path_len;
        stack.push_back(child);
        ++proof.forks;
        if (stack.size() > proof.max_live_states) {
          proof.max_live_states = stack.size();
          proof.msv_witness_op = k;
        }
        break;
      }
      case PlanOpKind::kError: {
        DepthState& state = stack.back();
        if (op.event.layer >= total_layers) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) + " names layer " +
                          std::to_string(op.event.layer) +
                          " beyond the circuit's last layer");
        }
        if (state.frontier != op.event.layer + 1) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) + " belongs to layer " +
                          std::to_string(op.event.layer) +
                          " but checkpoint depth " + std::to_string(op.depth) +
                          " is advanced through layer " + std::to_string(state.frontier) +
                          " (errors must be injected at their layer boundary)");
        }
        if (!materialize_top(k)) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) +
                          " materializes checkpoint depth " + std::to_string(op.depth) +
                          ", raising the live materialized count to " +
                          std::to_string(materialized_live) +
                          ", exceeding the MSV budget of " +
                          std::to_string(options_.max_states));
        }
        path.resize(state.path_len);
        path.push_back(op.event);
        ++state.path_len;
        proof.cached_ops += 1;
        break;
      }
      case PlanOpKind::kFinish: {
        const DepthState& state = stack.back();
        const auto t = static_cast<std::size_t>(op.trial);
        if (t >= trials.size()) {
          return fail(k, kNoIndex,
                      "finish at plan op " + std::to_string(k) + " names trial " +
                          std::to_string(t) + " but only " +
                          std::to_string(trials.size()) + " trials exist");
        }
        if (finished[t]) {
          return fail(k, t,
                      "trial " + std::to_string(t) + " is finished twice (plan op " +
                          std::to_string(k) + ")");
        }
        if (state.frontier != total_layers) {
          return fail(k, t,
                      "trial " + std::to_string(t) + " finishes at plan op " +
                          std::to_string(k) + " with its checkpoint advanced only " +
                          "through layer " + std::to_string(state.frontier) + " of " +
                          std::to_string(total_layers));
        }
        const std::vector<ErrorEvent>& expected = trials[t].events;
        const std::size_t prefix =
            frame_prefix != nullptr ? (*frame_prefix)[t] : kNoIndex;
        if (prefix != kNoIndex) {
          // Frame-collapsed trial: only the node's shared prefix is
          // injected; the remaining events (there must be some — otherwise
          // it is a tail trial) are carried by the frame the numeric
          // frame-algebra pass already proved.
          bool match = state.path_len == prefix && expected.size() > prefix;
          for (std::size_t e = 0; match && e < prefix; ++e) {
            match = path[e] == expected[e];
          }
          if (!match) {
            return fail(k, t,
                        "frame-collapsed trial " + std::to_string(t) +
                            " finishes at plan op " + std::to_string(k) +
                            " on a checkpoint whose injected error path (" +
                            std::to_string(state.path_len) +
                            " events) is not the trial's " + std::to_string(prefix) +
                            "-event collapse prefix");
          }
          ++proof.frame_trials;
        } else {
          bool match = state.path_len == expected.size();
          for (std::size_t e = 0; match && e < expected.size(); ++e) {
            match = path[e] == expected[e];
          }
          if (!match) {
            return fail(k, t,
                        "trial " + std::to_string(t) + " finishes at plan op " +
                            std::to_string(k) +
                            " on a checkpoint whose injected error " + "path (" +
                            std::to_string(state.path_len) +
                            " events) diverges from the trial's defined events (" +
                            std::to_string(expected.size()) + ")");
          }
        }
        finished[t] = true;
        ++finished_count;
        ++stack.back().finishes;
        break;
      }
      case PlanOpKind::kDrop: {
        if (stack.size() <= 1) {
          return fail(k, next_finished_trial(plan, k),
                      "drop at plan op " + std::to_string(k) +
                          " would release the root checkpoint");
        }
        if (stack.back().finishes == 0) {
          return fail(k, next_finished_trial(plan, k),
                      "checkpoint depth " + std::to_string(op.depth) +
                          " is dropped at plan op " + std::to_string(k) +
                          " without finishing any trial (dead branch: its forks and " +
                          "advances are wasted computation)");
        }
        const std::uint64_t finishes = stack.back().finishes;
        if (stack.back().materialized) {
          --materialized_live;
        }
        stack.pop_back();
        stack.back().finishes += finishes;
        ++proof.drops;
        break;
      }
    }
  }

  if (stack.size() != 1) {
    return fail(plan.size(), kNoIndex,
                "plan leaks " + std::to_string(stack.size() - 1) +
                    " checkpoint(s): every forked checkpoint must be dropped");
  }
  if (finished_count != trials.size()) {
    const auto first_unfinished = static_cast<std::size_t>(
        std::find(finished.begin(), finished.end(), false) - finished.begin());
    return fail(plan.size(), first_unfinished,
                "trial " + std::to_string(first_unfinished) +
                    " is never finished by the plan (" +
                    std::to_string(finished_count) + " of " +
                    std::to_string(trials.size()) + " trials covered)");
  }

  // ---- Invariant 4: exact telescoping of the op counts. The plan's
  // actual cost must equal the model prediction, and never exceed the
  // baseline (full circuit + own errors, per trial, nothing shared). The
  // framed model applies only when a frame map was supplied — the
  // sequential walker never collapses, so plain verify()/verify_schedule()
  // always predict against the unframed recursion.
  ScheduleOptions model_options = options_;
  model_options.frame_collapse = frame_prefix != nullptr && options_.frame_collapse;
  proof.predicted_ops = predict_cached_ops(ctx_, trials, model_options);
  proof.baseline_ops = baseline_op_count(ctx_, trials);
  if (proof.cached_ops != proof.predicted_ops) {
    const bool over = proof.cached_ops > proof.predicted_ops;
    const opcount_t delta = over ? proof.cached_ops - proof.predicted_ops
                                 : proof.predicted_ops - proof.cached_ops;
    return fail(plan.size(), kNoIndex,
                "op-count telescoping violated: the plan executes " +
                    std::to_string(proof.cached_ops) + " ops but the model predicts " +
                    std::to_string(proof.predicted_ops) + " (" +
                    (over ? "+" : "-") + std::to_string(delta) + ")");
  }
  if (!trials.empty() && proof.cached_ops > proof.baseline_ops) {
    return fail(plan.size(), kNoIndex,
                "plan executes " + std::to_string(proof.cached_ops) +
                    " ops, more than the unshared baseline of " +
                    std::to_string(proof.baseline_ops));
  }
  if (model_options.frame_collapse) {
    // The certified saving: what the same trials would cost without frame
    // collapse, minus what the framed plan actually executes.
    ScheduleOptions unframed = options_;
    unframed.frame_collapse = false;
    const opcount_t unframed_ops = predict_cached_ops(ctx_, trials, unframed);
    proof.frame_saved_ops =
        unframed_ops > proof.cached_ops ? unframed_ops - proof.cached_ops : 0;
  }
  return proof;
}

PlanProof PlanVerifier::verify_schedule(const std::vector<Trial>& trials) const {
  if (!is_reordered(trials)) {
    // Let verify() produce the precise per-trial ordering diagnostic
    // (schedule_trials would refuse to walk an unordered list).
    return verify(trials, {});
  }
  PlanRecorder recorder;
  schedule_trials(ctx_, trials, recorder, options_);
  return verify(trials, recorder.plan());
}

PlanProof PlanVerifier::verify_tree_plan(const std::vector<Trial>& trials,
                                         const ExecTree& tree) const {
  const auto fail = [](PlanProof proof, const std::string& message) {
    proof.ok = false;
    proof.diagnostic = message;
    proof.violating_op = kNoIndex;
    proof.violating_trial = kNoIndex;
    return proof;
  };

  const auto fail_trial = [&fail](std::size_t trial_index, const std::string& message) {
    PlanProof bad = fail({}, message);
    bad.violating_trial = trial_index;
    return bad;
  };

  if (tree.num_trials != trials.size()) {
    return fail({}, "tree was built for " + std::to_string(tree.num_trials) +
                        " trials but " + std::to_string(trials.size()) +
                        " were supplied");
  }

  // Pass 0a: replay leaves' uncompute_ok flags, re-derived from the gate
  // whitelist. The executor restores buffers *bitwise* on the strength of
  // this flag, so a corrupted flag is a correctness bug, not a perf one.
  const auto total_layers = static_cast<layer_index_t>(ctx_.num_layers());
  for (std::size_t ni = 0; ni < tree.nodes.size(); ++ni) {
    const TreeNode& node = tree.nodes[ni];
    if (node.kind != TreeNode::Kind::kReplay) {
      continue;
    }
    bool exact = true;
    for (layer_index_t l = node.entry_frontier; exact && l < total_layers; ++l) {
      for (const gate_index_t g : ctx_.layering.layers[l]) {
        if (!gate_fp_exact_invertible(ctx_.circuit.gates()[g].kind)) {
          exact = false;
          break;
        }
      }
    }
    if (node.uncompute_ok != exact) {
      return fail_trial(node.trial,
                        "replay node " + std::to_string(ni) + " (trial " +
                            std::to_string(node.trial) + ") claims uncompute_ok=" +
                            (node.uncompute_ok ? "true" : "false") +
                            " but layers [" + std::to_string(node.entry_frontier) +
                            ", " + std::to_string(total_layers) + ") are " +
                            (exact ? "entirely" : "not all") +
                            " fp-exact-invertible");
    }
  }

  // Pass 0b: frame algebra. Every recorded FrameTrial is re-proved by
  // numeric matrix conjugation (nothing shared with the builder's lookup
  // tables) and must satisfy the purity rules. This runs before the stream
  // passes so a wrongly propagated frame is named precisely.
  std::vector<std::size_t> frame_prefix(trials.size(), kNoIndex);
  std::uint64_t frame_count = 0;
  std::uint64_t frame_ops_total = 0;
  const std::uint64_t measured_mask = circuit_measured_mask(ctx_.circuit);
  for (std::size_t ni = 0; ni < tree.nodes.size(); ++ni) {
    const TreeNode& node = tree.nodes[ni];
    for (const FrameTrial& ft : node.frame_trials) {
      if (!options_.frame_collapse) {
        return fail_trial(ft.trial,
                          "tree records frame-collapsed trials but the schedule "
                          "options do not enable frame_collapse");
      }
      if (ft.trial >= trials.size()) {
        return fail({}, "node " + std::to_string(ni) + " records a frame for trial " +
                            std::to_string(ft.trial) + " but only " +
                            std::to_string(trials.size()) + " trials exist");
      }
      if (frame_prefix[ft.trial] != kNoIndex) {
        return fail_trial(ft.trial, "trial " + std::to_string(ft.trial) +
                                        " is frame-collapsed twice");
      }
      if (ft.trial < node.begin || ft.trial >= node.end) {
        return fail_trial(ft.trial,
                          "node " + std::to_string(ni) + " records a frame for trial " +
                              std::to_string(ft.trial) +
                              " outside its own group [" + std::to_string(node.begin) +
                              ", " + std::to_string(node.end) + ")");
      }
      const Trial& trial = trials[ft.trial];
      if (trial.events.size() <= node.event_depth) {
        return fail_trial(ft.trial,
                          "trial " + std::to_string(ft.trial) +
                              " has no error events past the node's " +
                              std::to_string(node.event_depth) +
                              "-event prefix — it is a tail trial, not a frame");
      }
      const NumericFrame nf = derive_frame_numeric(ctx_, trial, node.event_depth);
      if (!nf.ok) {
        return fail_trial(ft.trial, "frame algebra violation for trial " +
                                        std::to_string(ft.trial) + ": " +
                                        nf.diagnostic);
      }
      if (nf.frame.x != ft.frame_x || nf.frame.z != ft.frame_z) {
        return fail_trial(
            ft.trial,
            "trial " + std::to_string(ft.trial) + "'s recorded frame (x=" +
                std::to_string(ft.frame_x) + ", z=" + std::to_string(ft.frame_z) +
                ") does not match the numerically derived frame (x=" +
                std::to_string(nf.frame.x) + ", z=" + std::to_string(nf.frame.z) +
                ")");
      }
      if (nf.frame_ops != ft.frame_ops) {
        return fail_trial(ft.trial,
                          "trial " + std::to_string(ft.trial) + " records " +
                              std::to_string(ft.frame_ops) +
                              " frame ops but the numeric propagation performs " +
                              std::to_string(nf.frame_ops));
      }
      if (!frame_x_confined_to(nf.frame, measured_mask)) {
        return fail_trial(ft.trial,
                          "trial " + std::to_string(ft.trial) +
                              "'s frame has an X component on an unmeasured qubit "
                              "(collapse would perturb the marginalization bitwise)");
      }
      if (options_.frame_observables && nf.frame.x != 0) {
        return fail_trial(ft.trial,
                          "trial " + std::to_string(ft.trial) +
                              "'s frame has an X component but observables are "
                              "evaluated (Z-only frames required)");
      }
      frame_prefix[ft.trial] = node.event_depth;
      ++frame_count;
      frame_ops_total += ft.frame_ops;
    }
  }
  if (frame_count != tree.frame_collapsed_trials) {
    return fail({}, "tree.frame_collapsed_trials " +
                        std::to_string(tree.frame_collapsed_trials) + " != " +
                        std::to_string(frame_count) + " recorded frame trials");
  }
  if (frame_ops_total != tree.planned_frame_ops) {
    return fail({}, "tree.planned_frame_ops " + std::to_string(tree.planned_frame_ops) +
                        " != " + std::to_string(frame_ops_total) +
                        " proven frame ops");
  }
  const bool framed = frame_count != 0;

  // Pass 1: the linearized tree must satisfy every sequential invariant on
  // its own merits (framed trials carry a prefix-only finish obligation —
  // their remaining events were proved above).
  PlanRecorder tree_recorder;
  linearize_tree(ctx_, tree, trials, tree_recorder);
  PlanProof proof = verify_impl(trials, tree_recorder.plan(),
                                framed ? &frame_prefix : nullptr);
  if (!proof.ok) {
    return proof;
  }
  proof.frame_ops = frame_ops_total;

  // Pass 2: op-for-op equality with the sequential walker's stream. This
  // is stronger than passing the invariants independently — it pins the
  // tree to the *same* schedule, so op counts, fork counts and MSV all
  // telescope to the sequential values exactly. A framed tree is
  // deliberately *cheaper* than the sequential stream (collapsed subtrees
  // emit no ops at all), so the comparison is skipped; its op count is
  // instead pinned by the framed model in pass 1 and the saving recorded
  // in frame_saved_ops.
  if (!trials.empty() && !framed) {
    PlanRecorder seq_recorder;
    schedule_trials(ctx_, trials, seq_recorder, options_);
    const std::vector<PlanOp>& tree_plan = tree_recorder.plan();
    const std::vector<PlanOp>& seq_plan = seq_recorder.plan();
    if (tree_plan.size() != seq_plan.size()) {
      return fail(proof,
                  "tree plan has " + std::to_string(tree_plan.size()) +
                      " ops but the sequential scheduler emits " +
                      std::to_string(seq_plan.size()));
    }
    for (std::size_t k = 0; k < tree_plan.size(); ++k) {
      if (tree_plan[k] != seq_plan[k]) {
        PlanProof bad = fail(proof,
                             "tree plan diverges from the sequential stream at op " +
                                 std::to_string(k) + " (tree: " +
                                 kind_name(tree_plan[k].kind) + " at depth " +
                                 std::to_string(tree_plan[k].depth) +
                                 ", sequential: " + kind_name(seq_plan[k].kind) +
                                 " at depth " + std::to_string(seq_plan[k].depth) + ")");
        bad.violating_op = k;
        bad.violating_trial = next_finished_trial(tree_plan, k);
        return bad;
      }
    }
  }

  // Pass 3: the tree's own planned counters — what the executor budgets
  // and reports — must match the proof artifacts.
  if (tree.planned_ops != proof.cached_ops) {
    return fail(proof, "tree.planned_ops " + std::to_string(tree.planned_ops) +
                           " != proven cached op count " +
                           std::to_string(proof.cached_ops));
  }
  if (!trials.empty() && tree.planned_forks != proof.forks) {
    return fail(proof, "tree.planned_forks " + std::to_string(tree.planned_forks) +
                           " != proven fork count " + std::to_string(proof.forks));
  }
  if (!trials.empty() && tree.peak_demand != proof.max_live_states) {
    return fail(proof, "tree.peak_demand " + std::to_string(tree.peak_demand) +
                           " != proven sequential MSV " +
                           std::to_string(proof.max_live_states));
  }
  if (tree.frame_collapsed_trials != proof.frame_trials) {
    return fail(proof, "tree.frame_collapsed_trials " +
                           std::to_string(tree.frame_collapsed_trials) +
                           " != " + std::to_string(proof.frame_trials) +
                           " frame finishes proven in the stream");
  }
  return proof;
}

void verify_schedule_or_throw(const CircuitContext& ctx,
                              const std::vector<Trial>& trials,
                              const ScheduleOptions& options, const char* context) {
  const PlanVerifier verifier(ctx, options);
  const PlanProof proof = verifier.verify_schedule(trials);
  if (!proof.ok) {
    throw Error(std::string(context) + ": schedule verification failed — " +
                proof.diagnostic);
  }
}

void verify_tree_plan_or_throw(const CircuitContext& ctx,
                               const std::vector<Trial>& trials,
                               const ExecTree& tree, const ScheduleOptions& options,
                               const char* context) {
  const PlanVerifier verifier(ctx, options);
  const PlanProof proof = verifier.verify_tree_plan(trials, tree);
  if (!proof.ok) {
    throw Error(std::string(context) + ": tree-plan verification failed — " +
                proof.diagnostic);
  }
}

std::string format_proof(const PlanProof& proof) {
  std::ostringstream out;
  if (proof.ok) {
    out << "plan proof: OK\n";
  } else {
    out << "plan proof: VIOLATION — " << proof.diagnostic << "\n";
    out << "  violating trial   : ";
    if (proof.violating_trial == kNoIndex) {
      out << "(none / schedule-wide)\n";
    } else {
      out << proof.violating_trial << "\n";
    }
    out << "  violating plan op : ";
    if (proof.violating_op == kNoIndex) {
      out << "(trial list, before the stream)\n";
    } else {
      out << proof.violating_op << "\n";
    }
  }
  out << "  trials            : " << proof.num_trials << "\n";
  out << "  plan ops          : " << proof.num_plan_ops << "\n";
  out << "  cached ops        : " << proof.cached_ops << "\n";
  out << "  predicted ops     : " << proof.predicted_ops << "\n";
  out << "  baseline ops      : " << proof.baseline_ops << "\n";
  if (proof.baseline_ops > 0 && proof.ok) {
    out << "  normalized compute: "
        << format_double(static_cast<double>(proof.cached_ops) /
                             static_cast<double>(proof.baseline_ops),
                         4)
        << "\n";
  }
  out << "  max live states   : " << proof.max_live_states;
  if (proof.msv_witness_op != kNoIndex) {
    out << " (witness at plan op " << proof.msv_witness_op << ")";
  }
  out << "\n";
  out << "  max materialized  : " << proof.max_materialized_states;
  if (proof.materialization_witness_op != kNoIndex) {
    out << " (witness at plan op " << proof.materialization_witness_op << ")";
  }
  out << "\n";
  out << "  msv budget        : ";
  if (proof.msv_budget == 0) {
    out << "unlimited\n";
  } else {
    out << proof.msv_budget << " (checked against materialized states)\n";
  }
  out << "  forks / drops     : " << proof.forks << " / " << proof.drops << "\n";
  out << "  materializations  : " << proof.materializations << "\n";
  if (proof.frame_trials != 0) {
    out << "  frame trials      : " << proof.frame_trials << "\n";
    out << "  frame ops         : " << proof.frame_ops << "\n";
    out << "  frame saved ops   : " << proof.frame_saved_ops << "\n";
  }
  return out.str();
}

}  // namespace rqsim
