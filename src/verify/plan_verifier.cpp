#include "verify/plan_verifier.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "sched/order.hpp"
#include "sched/tree.hpp"

namespace rqsim {

// --------------------------------------------------------------------------
// PlanRecorder

void PlanRecorder::on_advance(std::size_t depth, layer_index_t from_layer,
                              layer_index_t to_layer) {
  PlanOp op;
  op.kind = PlanOpKind::kAdvance;
  op.depth = static_cast<std::uint32_t>(depth);
  op.from = from_layer;
  op.to = to_layer;
  plan_.push_back(op);
}

void PlanRecorder::on_fork(std::size_t depth) {
  PlanOp op;
  op.kind = PlanOpKind::kFork;
  op.depth = static_cast<std::uint32_t>(depth);
  plan_.push_back(op);
}

void PlanRecorder::on_error(std::size_t depth, const ErrorEvent& event) {
  PlanOp op;
  op.kind = PlanOpKind::kError;
  op.depth = static_cast<std::uint32_t>(depth);
  op.event = event;
  plan_.push_back(op);
}

void PlanRecorder::on_finish(std::size_t depth, trial_index_t trial_index,
                             const Trial& trial) {
  (void)trial;
  PlanOp op;
  op.kind = PlanOpKind::kFinish;
  op.depth = static_cast<std::uint32_t>(depth);
  op.trial = trial_index;
  plan_.push_back(op);
}

void PlanRecorder::on_drop(std::size_t depth) {
  PlanOp op;
  op.kind = PlanOpKind::kDrop;
  op.depth = static_cast<std::uint32_t>(depth);
  plan_.push_back(op);
}

// --------------------------------------------------------------------------
// Independent op-count model

namespace {

/// Ops a lone trial costs when replayed from a checkpoint at `frontier`
/// with its first `event_depth` events already injected.
opcount_t replay_ops(const CircuitContext& ctx, const Trial& trial,
                     std::size_t event_depth, layer_index_t frontier) {
  opcount_t ops = 0;
  layer_index_t f = frontier;
  for (std::size_t k = event_depth; k < trial.events.size(); ++k) {
    const layer_index_t target = trial.events[k].layer + 1;
    if (target > f) {
      ops += ctx.ops_in_layers(f, target);
      f = target;
    }
    ops += 1;
  }
  const auto total = static_cast<layer_index_t>(ctx.num_layers());
  if (total > f) {
    ops += ctx.ops_in_layers(f, total);
  }
  return ops;
}

/// Counting model of the reorder+cache recursion over the group
/// [begin, end) of trials sharing their first `event_depth` events, with
/// the shared checkpoint advanced through `frontier` layers.
opcount_t model_group_ops(const CircuitContext& ctx, const std::vector<Trial>& trials,
                          const ScheduleOptions& options, std::size_t begin,
                          std::size_t end, std::size_t event_depth, std::size_t depth,
                          layer_index_t frontier) {
  opcount_t ops = 0;
  std::size_t i = begin;
  while (i != end && trials[i].events.size() > event_depth) {
    const ErrorEvent event = trials[i].events[event_depth];
    std::size_t j = i + 1;
    while (j != end && trials[j].events.size() > event_depth &&
           trials[j].events[event_depth] == event) {
      ++j;
    }
    const layer_index_t target = event.layer + 1;
    if (target > frontier) {
      ops += ctx.ops_in_layers(frontier, target);
      frontier = target;
    }
    if (j - i == 1) {
      ops += replay_ops(ctx, trials[i], event_depth, frontier);
    } else if (options.max_states == 0 || depth + 2 < options.max_states) {
      ops += 1;  // the shared error injection
      ops += model_group_ops(ctx, trials, options, i, j, event_depth + 1, depth + 1,
                             frontier);
    } else {
      for (std::size_t t = i; t != j; ++t) {
        ops += replay_ops(ctx, trials[t], event_depth, frontier);
      }
    }
    i = j;
  }
  if (i != end) {
    const auto total = static_cast<layer_index_t>(ctx.num_layers());
    if (total > frontier) {
      ops += ctx.ops_in_layers(frontier, total);
    }
  }
  return ops;
}

}  // namespace

opcount_t predict_cached_ops(const CircuitContext& ctx, const std::vector<Trial>& trials,
                             const ScheduleOptions& options) {
  if (trials.empty()) {
    return 0;
  }
  return model_group_ops(ctx, trials, options, 0, trials.size(), /*event_depth=*/0,
                         /*depth=*/0, /*frontier=*/0);
}

// --------------------------------------------------------------------------
// PlanVerifier

namespace {

const char* kind_name(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kAdvance: return "advance";
    case PlanOpKind::kFork: return "fork";
    case PlanOpKind::kError: return "error";
    case PlanOpKind::kFinish: return "finish";
    case PlanOpKind::kDrop: return "drop";
  }
  return "?";
}

/// First trial a stream corruption at plan op `k` would poison: the next
/// finish at or after `k` (trials already finished are untouched).
std::size_t next_finished_trial(const std::vector<PlanOp>& plan, std::size_t k) {
  for (std::size_t i = k; i < plan.size(); ++i) {
    if (plan[i].kind == PlanOpKind::kFinish) {
      return static_cast<std::size_t>(plan[i].trial);
    }
  }
  return kNoIndex;
}

/// Live checkpoint bookkeeping during the stream walk. `path_len` is the
/// number of error events on this checkpoint's ancestry (a prefix of the
/// shared `path` vector — forks copy by prefix, so one vector serves every
/// depth), `finishes` counts trials finished in this checkpoint's subtree.
/// `materialized` models the CoW executor's memory: a fork shares its
/// parent's buffer until the first write (advance or error) pays the copy.
struct DepthState {
  layer_index_t frontier = 0;
  std::size_t path_len = 0;
  std::uint64_t finishes = 0;
  bool materialized = false;
};

}  // namespace

PlanVerifier::PlanVerifier(const CircuitContext& ctx, const ScheduleOptions& options)
    : ctx_(ctx), options_(options) {
  RQSIM_CHECK(options.max_states == 0 || options.max_states >= 2,
              "PlanVerifier: max_states must be 0 (unlimited) or >= 2");
}

PlanProof PlanVerifier::verify(const std::vector<Trial>& trials,
                               const std::vector<PlanOp>& plan) const {
  PlanProof proof;
  proof.num_trials = trials.size();
  proof.num_plan_ops = plan.size();
  proof.msv_budget = options_.max_states;

  const auto fail = [&proof](std::size_t op_index, std::size_t trial_index,
                             const std::string& message) -> const PlanProof& {
    proof.ok = false;
    proof.violating_op = op_index;
    proof.violating_trial = trial_index;
    proof.diagnostic = message;
    return proof;
  };

  const auto total_layers = static_cast<layer_index_t>(ctx_.num_layers());

  // ---- Invariant 1: trial well-formedness and lexicographic reorder
  // order, with "no-further-error" sorted after any further error.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const std::vector<ErrorEvent>& events = trials[i].events;
    for (std::size_t k = 0; k < events.size(); ++k) {
      if (events[k].layer >= total_layers) {
        return fail(kNoIndex, i,
                    "trial " + std::to_string(i) + " event " + std::to_string(k) +
                        " names layer " + std::to_string(events[k].layer) +
                        " but the circuit has only " + std::to_string(total_layers) +
                        " layers");
      }
      if (k > 0 && events[k] < events[k - 1]) {
        return fail(kNoIndex, i,
                    "trial " + std::to_string(i) +
                        " has unsorted error events (event " + std::to_string(k) +
                        " precedes event " + std::to_string(k - 1) + ")");
      }
    }
    if (i > 0 && trial_order_less(trials[i], trials[i - 1])) {
      return fail(kNoIndex, i,
                  "trial " + std::to_string(i) +
                      " is out of reorder order: it sorts before trial " +
                      std::to_string(i - 1) +
                      " (lexicographic over error events, exhausted-last)");
    }
  }

  // ---- Invariants 2 & 3: checkpoint stack discipline and the MSV bound,
  // walked over the recorded stream with per-trial path reconstruction.
  // The MSV budget is checked against *materialized* checkpoints: a fork
  // is free (CoW refcount bump) until its first write pays the copy, which
  // is exactly when the executor's banker accounting charges a token.
  std::vector<DepthState> stack(1);
  stack.front().materialized = true;  // the root state is allocated up front
  proof.materializations = 1;
  std::size_t materialized_live = 1;
  std::vector<ErrorEvent> path;  // shared by all depths; see DepthState
  std::vector<bool> finished(trials.size(), false);
  std::size_t finished_count = 0;

  // First write to an unmaterialized checkpoint: charge the copy against
  // the budget and record the high-water witness.
  const auto materialize_top = [&](std::size_t k) -> bool {
    if (stack.back().materialized) {
      return true;
    }
    stack.back().materialized = true;
    ++proof.materializations;
    ++materialized_live;
    if (materialized_live > proof.max_materialized_states) {
      proof.max_materialized_states = materialized_live;
      proof.materialization_witness_op = k;
    }
    return options_.max_states == 0 || materialized_live <= options_.max_states;
  };

  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlanOp& op = plan[k];
    const std::size_t top = stack.size() - 1;
    if (op.depth != top &&
        !(op.kind == PlanOpKind::kFinish && op.depth == top)) {
      return fail(k, next_finished_trial(plan, k),
                  std::string(kind_name(op.kind)) + " at plan op " +
                      std::to_string(k) + " targets checkpoint depth " +
                      std::to_string(op.depth) + " but the live stack top is depth " +
                      std::to_string(top) +
                      (op.depth > top ? " (use after drop)" : " (not the top)"));
    }
    switch (op.kind) {
      case PlanOpKind::kAdvance: {
        DepthState& state = stack.back();
        if (op.from != state.frontier) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) + " starts at layer " +
                          std::to_string(op.from) + " but checkpoint depth " +
                          std::to_string(op.depth) + " is advanced through layer " +
                          std::to_string(state.frontier) +
                          " (layers would be skipped or reapplied)");
        }
        if (op.to <= op.from || op.to > total_layers) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) + " has bad range [" +
                          std::to_string(op.from) + ", " + std::to_string(op.to) +
                          ") for a circuit with " + std::to_string(total_layers) +
                          " layers");
        }
        if (!materialize_top(k)) {
          return fail(k, next_finished_trial(plan, k),
                      "advance at plan op " + std::to_string(k) +
                          " materializes checkpoint depth " + std::to_string(op.depth) +
                          ", raising the live materialized count to " +
                          std::to_string(materialized_live) +
                          ", exceeding the MSV budget of " +
                          std::to_string(options_.max_states));
        }
        proof.cached_ops += ctx_.ops_in_layers(op.from, op.to);
        state.frontier = op.to;
        break;
      }
      case PlanOpKind::kFork: {
        // Forks are free under CoW — no copy, no token — so the budget is
        // not checked here; it is charged at the child's first write.
        DepthState child;
        child.frontier = stack.back().frontier;
        child.path_len = stack.back().path_len;
        stack.push_back(child);
        ++proof.forks;
        if (stack.size() > proof.max_live_states) {
          proof.max_live_states = stack.size();
          proof.msv_witness_op = k;
        }
        break;
      }
      case PlanOpKind::kError: {
        DepthState& state = stack.back();
        if (op.event.layer >= total_layers) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) + " names layer " +
                          std::to_string(op.event.layer) +
                          " beyond the circuit's last layer");
        }
        if (state.frontier != op.event.layer + 1) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) + " belongs to layer " +
                          std::to_string(op.event.layer) +
                          " but checkpoint depth " + std::to_string(op.depth) +
                          " is advanced through layer " + std::to_string(state.frontier) +
                          " (errors must be injected at their layer boundary)");
        }
        if (!materialize_top(k)) {
          return fail(k, next_finished_trial(plan, k),
                      "error at plan op " + std::to_string(k) +
                          " materializes checkpoint depth " + std::to_string(op.depth) +
                          ", raising the live materialized count to " +
                          std::to_string(materialized_live) +
                          ", exceeding the MSV budget of " +
                          std::to_string(options_.max_states));
        }
        path.resize(state.path_len);
        path.push_back(op.event);
        ++state.path_len;
        proof.cached_ops += 1;
        break;
      }
      case PlanOpKind::kFinish: {
        const DepthState& state = stack.back();
        const auto t = static_cast<std::size_t>(op.trial);
        if (t >= trials.size()) {
          return fail(k, kNoIndex,
                      "finish at plan op " + std::to_string(k) + " names trial " +
                          std::to_string(t) + " but only " +
                          std::to_string(trials.size()) + " trials exist");
        }
        if (finished[t]) {
          return fail(k, t,
                      "trial " + std::to_string(t) + " is finished twice (plan op " +
                          std::to_string(k) + ")");
        }
        if (state.frontier != total_layers) {
          return fail(k, t,
                      "trial " + std::to_string(t) + " finishes at plan op " +
                          std::to_string(k) + " with its checkpoint advanced only " +
                          "through layer " + std::to_string(state.frontier) + " of " +
                          std::to_string(total_layers));
        }
        const std::vector<ErrorEvent>& expected = trials[t].events;
        bool match = state.path_len == expected.size();
        for (std::size_t e = 0; match && e < expected.size(); ++e) {
          match = path[e] == expected[e];
        }
        if (!match) {
          return fail(k, t,
                      "trial " + std::to_string(t) + " finishes at plan op " +
                          std::to_string(k) + " on a checkpoint whose injected error " +
                          "path (" + std::to_string(state.path_len) +
                          " events) diverges from the trial's defined events (" +
                          std::to_string(expected.size()) + ")");
        }
        finished[t] = true;
        ++finished_count;
        ++stack.back().finishes;
        break;
      }
      case PlanOpKind::kDrop: {
        if (stack.size() <= 1) {
          return fail(k, next_finished_trial(plan, k),
                      "drop at plan op " + std::to_string(k) +
                          " would release the root checkpoint");
        }
        if (stack.back().finishes == 0) {
          return fail(k, next_finished_trial(plan, k),
                      "checkpoint depth " + std::to_string(op.depth) +
                          " is dropped at plan op " + std::to_string(k) +
                          " without finishing any trial (dead branch: its forks and " +
                          "advances are wasted computation)");
        }
        const std::uint64_t finishes = stack.back().finishes;
        if (stack.back().materialized) {
          --materialized_live;
        }
        stack.pop_back();
        stack.back().finishes += finishes;
        ++proof.drops;
        break;
      }
    }
  }

  if (stack.size() != 1) {
    return fail(plan.size(), kNoIndex,
                "plan leaks " + std::to_string(stack.size() - 1) +
                    " checkpoint(s): every forked checkpoint must be dropped");
  }
  if (finished_count != trials.size()) {
    const auto first_unfinished = static_cast<std::size_t>(
        std::find(finished.begin(), finished.end(), false) - finished.begin());
    return fail(plan.size(), first_unfinished,
                "trial " + std::to_string(first_unfinished) +
                    " is never finished by the plan (" +
                    std::to_string(finished_count) + " of " +
                    std::to_string(trials.size()) + " trials covered)");
  }

  // ---- Invariant 4: exact telescoping of the op counts. The plan's
  // actual cost must equal the model prediction, and never exceed the
  // baseline (full circuit + own errors, per trial, nothing shared).
  proof.predicted_ops = predict_cached_ops(ctx_, trials, options_);
  proof.baseline_ops = baseline_op_count(ctx_, trials);
  if (proof.cached_ops != proof.predicted_ops) {
    const bool over = proof.cached_ops > proof.predicted_ops;
    const opcount_t delta = over ? proof.cached_ops - proof.predicted_ops
                                 : proof.predicted_ops - proof.cached_ops;
    return fail(plan.size(), kNoIndex,
                "op-count telescoping violated: the plan executes " +
                    std::to_string(proof.cached_ops) + " ops but the model predicts " +
                    std::to_string(proof.predicted_ops) + " (" +
                    (over ? "+" : "-") + std::to_string(delta) + ")");
  }
  if (!trials.empty() && proof.cached_ops > proof.baseline_ops) {
    return fail(plan.size(), kNoIndex,
                "plan executes " + std::to_string(proof.cached_ops) +
                    " ops, more than the unshared baseline of " +
                    std::to_string(proof.baseline_ops));
  }
  return proof;
}

PlanProof PlanVerifier::verify_schedule(const std::vector<Trial>& trials) const {
  if (!is_reordered(trials)) {
    // Let verify() produce the precise per-trial ordering diagnostic
    // (schedule_trials would refuse to walk an unordered list).
    return verify(trials, {});
  }
  PlanRecorder recorder;
  schedule_trials(ctx_, trials, recorder, options_);
  return verify(trials, recorder.plan());
}

PlanProof PlanVerifier::verify_tree_plan(const std::vector<Trial>& trials,
                                         const ExecTree& tree) const {
  const auto fail = [](PlanProof proof, const std::string& message) {
    proof.ok = false;
    proof.diagnostic = message;
    proof.violating_op = kNoIndex;
    proof.violating_trial = kNoIndex;
    return proof;
  };

  if (tree.num_trials != trials.size()) {
    return fail({}, "tree was built for " + std::to_string(tree.num_trials) +
                        " trials but " + std::to_string(trials.size()) +
                        " were supplied");
  }

  // Pass 1: the linearized tree must satisfy every sequential invariant on
  // its own merits.
  PlanRecorder tree_recorder;
  linearize_tree(ctx_, tree, trials, tree_recorder);
  PlanProof proof = verify(trials, tree_recorder.plan());
  if (!proof.ok) {
    return proof;
  }

  // Pass 2: op-for-op equality with the sequential walker's stream. This
  // is stronger than passing the invariants independently — it pins the
  // tree to the *same* schedule, so op counts, fork counts and MSV all
  // telescope to the sequential values exactly.
  if (!trials.empty()) {
    PlanRecorder seq_recorder;
    schedule_trials(ctx_, trials, seq_recorder, options_);
    const std::vector<PlanOp>& tree_plan = tree_recorder.plan();
    const std::vector<PlanOp>& seq_plan = seq_recorder.plan();
    if (tree_plan.size() != seq_plan.size()) {
      return fail(proof,
                  "tree plan has " + std::to_string(tree_plan.size()) +
                      " ops but the sequential scheduler emits " +
                      std::to_string(seq_plan.size()));
    }
    for (std::size_t k = 0; k < tree_plan.size(); ++k) {
      if (tree_plan[k] != seq_plan[k]) {
        PlanProof bad = fail(proof,
                             "tree plan diverges from the sequential stream at op " +
                                 std::to_string(k) + " (tree: " +
                                 kind_name(tree_plan[k].kind) + " at depth " +
                                 std::to_string(tree_plan[k].depth) +
                                 ", sequential: " + kind_name(seq_plan[k].kind) +
                                 " at depth " + std::to_string(seq_plan[k].depth) + ")");
        bad.violating_op = k;
        bad.violating_trial = next_finished_trial(tree_plan, k);
        return bad;
      }
    }
  }

  // Pass 3: the tree's own planned counters — what the executor budgets
  // and reports — must match the proof artifacts.
  if (tree.planned_ops != proof.cached_ops) {
    return fail(proof, "tree.planned_ops " + std::to_string(tree.planned_ops) +
                           " != proven cached op count " +
                           std::to_string(proof.cached_ops));
  }
  if (!trials.empty() && tree.planned_forks != proof.forks) {
    return fail(proof, "tree.planned_forks " + std::to_string(tree.planned_forks) +
                           " != proven fork count " + std::to_string(proof.forks));
  }
  if (!trials.empty() && tree.peak_demand != proof.max_live_states) {
    return fail(proof, "tree.peak_demand " + std::to_string(tree.peak_demand) +
                           " != proven sequential MSV " +
                           std::to_string(proof.max_live_states));
  }
  return proof;
}

void verify_schedule_or_throw(const CircuitContext& ctx,
                              const std::vector<Trial>& trials,
                              const ScheduleOptions& options, const char* context) {
  const PlanVerifier verifier(ctx, options);
  const PlanProof proof = verifier.verify_schedule(trials);
  if (!proof.ok) {
    throw Error(std::string(context) + ": schedule verification failed — " +
                proof.diagnostic);
  }
}

void verify_tree_plan_or_throw(const CircuitContext& ctx,
                               const std::vector<Trial>& trials,
                               const ExecTree& tree, const ScheduleOptions& options,
                               const char* context) {
  const PlanVerifier verifier(ctx, options);
  const PlanProof proof = verifier.verify_tree_plan(trials, tree);
  if (!proof.ok) {
    throw Error(std::string(context) + ": tree-plan verification failed — " +
                proof.diagnostic);
  }
}

std::string format_proof(const PlanProof& proof) {
  std::ostringstream out;
  if (proof.ok) {
    out << "plan proof: OK\n";
  } else {
    out << "plan proof: VIOLATION — " << proof.diagnostic << "\n";
    out << "  violating trial   : ";
    if (proof.violating_trial == kNoIndex) {
      out << "(none / schedule-wide)\n";
    } else {
      out << proof.violating_trial << "\n";
    }
    out << "  violating plan op : ";
    if (proof.violating_op == kNoIndex) {
      out << "(trial list, before the stream)\n";
    } else {
      out << proof.violating_op << "\n";
    }
  }
  out << "  trials            : " << proof.num_trials << "\n";
  out << "  plan ops          : " << proof.num_plan_ops << "\n";
  out << "  cached ops        : " << proof.cached_ops << "\n";
  out << "  predicted ops     : " << proof.predicted_ops << "\n";
  out << "  baseline ops      : " << proof.baseline_ops << "\n";
  if (proof.baseline_ops > 0 && proof.ok) {
    out << "  normalized compute: "
        << format_double(static_cast<double>(proof.cached_ops) /
                             static_cast<double>(proof.baseline_ops),
                         4)
        << "\n";
  }
  out << "  max live states   : " << proof.max_live_states;
  if (proof.msv_witness_op != kNoIndex) {
    out << " (witness at plan op " << proof.msv_witness_op << ")";
  }
  out << "\n";
  out << "  max materialized  : " << proof.max_materialized_states;
  if (proof.materialization_witness_op != kNoIndex) {
    out << " (witness at plan op " << proof.materialization_witness_op << ")";
  }
  out << "\n";
  out << "  msv budget        : ";
  if (proof.msv_budget == 0) {
    out << "unlimited\n";
  } else {
    out << proof.msv_budget << " (checked against materialized states)\n";
  }
  out << "  forks / drops     : " << proof.forks << " / " << proof.drops << "\n";
  out << "  materializations  : " << proof.materializations << "\n";
  return out.str();
}

}  // namespace rqsim
