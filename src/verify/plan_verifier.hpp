// Schedule-invariant verification ("plan proofs").
//
// The prefix-caching speedup rests on invariants that the scheduler
// maintains *by construction* but that nothing re-checks: the trial list
// must be in reorder order (Algorithm 1's lexicographic order with
// "no-further-error" last), the checkpoint stream must form a valid stack
// discipline (no use-after-drop, no leak), the number of live *materialized*
// checkpoints must stay within the MSV budget (a CoW fork occupies no
// memory until its first write), and the op count implied by the stream
// must telescope exactly against both an independent prediction and the
// baseline. This module makes those invariants checkable before any
// amplitude is touched:
//
//   PlanRecorder  — a ScheduleVisitor that captures the scheduler's op
//                   stream as a flat, allocation-light "plan".
//   PlanVerifier  — a pure pass over (trials, plan) that either produces a
//                   PlanProof (the proof artifacts: witness MSV depth,
//                   telescoped op counts, per-trial coverage) or a precise
//                   diagnostic naming the first violating trial index.
//
// The verifier re-derives every per-trial operator path from the plan
// alone: a trial's proof obligation is that the advances and errors
// accumulated along its checkpoint ancestry equal exactly the full-circuit
// layer sweep interleaved with the trial's own error events. Because the
// check runs on the recorded stream — not on the scheduler's internal
// state — a corrupted schedule cannot vouch for itself.
//
// Execution entry points (run_noisy, run_noisy_parallel, execute_batch)
// run this pass before touching amplitudes when
// NoisyRunConfig::verify_plans is set; the `rqsim verify` CLI verb runs it
// standalone and prints the artifacts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/plan.hpp"

namespace rqsim {

struct ExecTree;  // sched/tree.hpp

enum class PlanOpKind : std::uint8_t {
  kAdvance,  // apply layers [from, to) to checkpoint `depth`
  kFork,     // duplicate checkpoint `depth` into depth + 1
  kError,    // inject `event` into checkpoint `depth`
  kFinish,   // checkpoint `depth` is trial `trial`'s final state
  kDrop,     // checkpoint `depth` is dead
};

/// One primitive operation of a recorded schedule.
struct PlanOp {
  PlanOpKind kind = PlanOpKind::kAdvance;
  std::uint32_t depth = 0;
  layer_index_t from = 0;  // kAdvance
  layer_index_t to = 0;    // kAdvance
  ErrorEvent event;        // kError
  trial_index_t trial = 0; // kFinish
};

/// Semantic equality: compares only the fields the op kind makes
/// meaningful (verify_tree_plan's op-for-op stream comparison).
inline bool operator==(const PlanOp& a, const PlanOp& b) {
  if (a.kind != b.kind || a.depth != b.depth) {
    return false;
  }
  switch (a.kind) {
    case PlanOpKind::kAdvance:
      return a.from == b.from && a.to == b.to;
    case PlanOpKind::kError:
      return a.event == b.event;
    case PlanOpKind::kFinish:
      return a.trial == b.trial;
    case PlanOpKind::kFork:
    case PlanOpKind::kDrop:
      return true;
  }
  return false;
}

inline bool operator!=(const PlanOp& a, const PlanOp& b) { return !(a == b); }

/// ScheduleVisitor that records the stream as a flat plan.
class PlanRecorder : public ScheduleVisitor {
 public:
  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override;
  void on_fork(std::size_t depth) override;
  void on_error(std::size_t depth, const ErrorEvent& event) override;
  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override;
  void on_drop(std::size_t depth) override;

  const std::vector<PlanOp>& plan() const { return plan_; }
  std::vector<PlanOp> take_plan() { return std::move(plan_); }

 private:
  std::vector<PlanOp> plan_;
};

inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Outcome of a verification pass: either ok with the proof artifacts, or
/// a violation with a diagnostic locating the first offending trial/op.
struct PlanProof {
  bool ok = true;

  /// Human-readable description of the first violation (empty when ok).
  std::string diagnostic;

  /// First trial whose result the violation would corrupt (kNoIndex when
  /// no trial is affected or the plan never reaches one).
  std::size_t violating_trial = kNoIndex;

  /// Index into the plan stream of the violating op (kNoIndex for
  /// trial-list violations, which precede the stream).
  std::size_t violating_op = kNoIndex;

  // ---- proof artifacts (valid when ok) ----
  std::size_t num_trials = 0;
  std::size_t num_plan_ops = 0;

  /// Op count implied by the plan stream (advances + error injections).
  opcount_t cached_ops = 0;

  /// Independent model prediction of the cached op count; ok implies
  /// cached_ops == predicted_ops.
  opcount_t predicted_ops = 0;

  /// What the baseline (no sharing) would execute; ok implies
  /// cached_ops <= baseline_ops.
  opcount_t baseline_ops = 0;

  /// Witness MSV: the maximum number of live checkpoints, and the plan op
  /// at which that depth is first reached.
  std::size_t max_live_states = 1;
  std::size_t msv_witness_op = kNoIndex;

  /// Witness for the CoW memory bound: the maximum number of live
  /// *materialized* checkpoints — a fork only materializes at its first
  /// write (advance or error), so this is what the MSV budget is checked
  /// against — and the write op at which that maximum is first reached.
  /// For any schedule the sequential walker emits, every fork's next op
  /// writes the child, so max_materialized_states == max_live_states; the
  /// two can differ only for hand-built plans with never-written forks.
  std::size_t max_materialized_states = 1;
  std::size_t materialization_witness_op = kNoIndex;

  /// The budget the plan was checked against (0 = unlimited).
  std::size_t msv_budget = 0;

  std::uint64_t forks = 0;
  std::uint64_t drops = 0;

  /// Checkpoints that were ever written (materializations the CoW executor
  /// would pay as 2^n copies; <= forks + 1 counting the root).
  std::uint64_t materializations = 0;

  // ---- Pauli-frame artifacts (framed trees only; all 0 otherwise) ----

  /// Trials finished by frame collapse, each proved by the numeric
  /// frame-algebra pass (matrix conjugation, independent of the builder's
  /// lookup tables).
  std::uint64_t frame_trials = 0;

  /// Conjugation steps the proven frames cost — integer bookkeeping that
  /// replaced statevector ops, never part of cached_ops.
  std::uint64_t frame_ops = 0;

  /// Matvec ops frame collapse eliminated: the unframed model prediction
  /// minus cached_ops. This is the saving the proof certifies.
  opcount_t frame_saved_ops = 0;
};

/// Pure verification pass over a trial list and a recorded plan.
class PlanVerifier {
 public:
  explicit PlanVerifier(const CircuitContext& ctx,
                        const ScheduleOptions& options = {});

  /// Prove (or refute) all schedule invariants for `plan` against
  /// `trials`. Never throws on violation — inspect PlanProof::ok.
  PlanProof verify(const std::vector<Trial>& trials,
                   const std::vector<PlanOp>& plan) const;

  /// Record the scheduler's plan for `trials` (which must already be
  /// reordered) and verify it in one call.
  PlanProof verify_schedule(const std::vector<Trial>& trials) const;

  /// Prove the prefix-tree execution plan (sched/tree.hpp) safe AND
  /// equivalent to the sequential scheduler: linearize the tree, run the
  /// full invariant pass on the linearization (reorder-order trial visits,
  /// checkpoint stack discipline, MSV bound, exact op-count telescoping),
  /// then require the linearized stream to equal the sequential walker's
  /// stream op for op — which transfers every sequential guarantee to
  /// whatever interleaving the work-stealing executor realizes, since
  /// workers execute exactly the tree's nodes. Finally cross-checks the
  /// tree's own planned counters (planned_ops, planned_forks, peak_demand)
  /// against the proof artifacts.
  ///
  /// Frame-collapsed trees (ExecTree::has_frames) get a *frame-algebra*
  /// pass first: every recorded FrameTrial is re-propagated numerically —
  /// each gate's action on the frame is computed as the matrix conjugation
  /// G·P·G† and matched against a pure Pauli up to a unit phase, entirely
  /// independent of the conjugation tables the builder used — and must
  /// reproduce the recorded masks and op counts, satisfy the purity rules
  /// (X part confined to measured qubits; Z-only under frame_observables),
  /// and never pass a blocking non-Clifford gate. A violation names the
  /// first offending trial. The invariant pass then treats each framed
  /// trial's finish as a *prefix* obligation (only event_depth events
  /// injected; the remainder is carried by the proven frame), the op-count
  /// model mirrors the builder's collapse decisions, and the op-for-op
  /// stream comparison is skipped — a collapsed tree is deliberately
  /// *cheaper* than the sequential stream, which is the saving recorded in
  /// PlanProof::frame_saved_ops. Replay leaves additionally get their
  /// uncompute_ok flag re-derived from the gate whitelist.
  PlanProof verify_tree_plan(const std::vector<Trial>& trials,
                             const ExecTree& tree) const;

 private:
  /// Shared invariant pass. `frame_prefix`, when non-null, maps each trial
  /// index to the injected-event prefix length its finish must carry
  /// (kNoIndex = normal trial, full path required).
  PlanProof verify_impl(const std::vector<Trial>& trials,
                        const std::vector<PlanOp>& plan,
                        const std::vector<std::size_t>* frame_prefix) const;

  const CircuitContext& ctx_;
  ScheduleOptions options_;
};

/// Independent model of the reorder+prefix-cache op count: computed from
/// the trial list alone, never from the scheduler or a recorded plan. The
/// verifier (and tests) require the scheduler's actual count to match this
/// prediction exactly. With options.frame_collapse set the model mirrors
/// the tree builder's collapse decisions (collapsed groups cost no forks
/// and no subtree ops), predicting the *framed* tree's planned_ops.
opcount_t predict_cached_ops(const CircuitContext& ctx,
                             const std::vector<Trial>& trials,
                             const ScheduleOptions& options = {});

/// Record + verify, throwing rqsim::Error with the diagnostic on any
/// violation. `context` names the caller in the error message.
void verify_schedule_or_throw(const CircuitContext& ctx,
                              const std::vector<Trial>& trials,
                              const ScheduleOptions& options,
                              const char* context);

/// verify_tree_plan, throwing rqsim::Error with the diagnostic on any
/// violation. `options` must be the ScheduleOptions the tree was built with.
void verify_tree_plan_or_throw(const CircuitContext& ctx,
                               const std::vector<Trial>& trials,
                               const ExecTree& tree,
                               const ScheduleOptions& options,
                               const char* context);

/// Render the proof artifacts (CLI output format).
std::string format_proof(const PlanProof& proof);

}  // namespace rqsim
