// Small dense complex matrices used for gate definitions and the reference
// simulator: fixed-size 2x2 / 4x4 types plus a general dense matrix.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rqsim {

/// 2x2 complex matrix (row-major), the unit of single-qubit gates.
struct Mat2 {
  std::array<cplx, 4> m{};

  cplx& at(std::size_t r, std::size_t c) { return m[2 * r + c]; }
  const cplx& at(std::size_t r, std::size_t c) const { return m[2 * r + c]; }

  static Mat2 identity();
  static Mat2 zero();

  Mat2 operator*(const Mat2& rhs) const;
  Mat2 operator*(cplx scale) const;
  Mat2 operator+(const Mat2& rhs) const;

  /// Conjugate transpose.
  Mat2 dagger() const;
};

/// 4x4 complex matrix (row-major), the unit of two-qubit gates.
struct Mat4 {
  std::array<cplx, 16> m{};

  cplx& at(std::size_t r, std::size_t c) { return m[4 * r + c]; }
  const cplx& at(std::size_t r, std::size_t c) const { return m[4 * r + c]; }

  static Mat4 identity();
  static Mat4 zero();

  Mat4 operator*(const Mat4& rhs) const;
  Mat4 operator*(cplx scale) const;
  Mat4 operator+(const Mat4& rhs) const;

  Mat4 dagger() const;
};

/// Kronecker product a ⊗ b (a acts on the higher-order qubit).
Mat4 kron(const Mat2& a, const Mat2& b);

/// Frobenius distance ||a - b||_F.
double frobenius_distance(const Mat2& a, const Mat2& b);
double frobenius_distance(const Mat4& a, const Mat4& b);

/// True if m is unitary within tolerance.
bool is_unitary(const Mat2& m, double tol = 1e-10);
bool is_unitary(const Mat4& m, double tol = 1e-10);

/// True if a == b up to a global phase, within tolerance.
bool equal_up_to_global_phase(const Mat2& a, const Mat2& b, double tol = 1e-9);
bool equal_up_to_global_phase(const Mat4& a, const Mat4& b, double tol = 1e-9);

/// Haar-ish random unitaries (QR of a Ginibre matrix via Gram-Schmidt).
Mat2 random_unitary2(Rng& rng);
Mat4 random_unitary4(Rng& rng);

/// General dense square complex matrix, used only by the reference
/// simulator and tests (sizes up to 2^10).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t dim);

  static DenseMatrix identity(std::size_t dim);

  std::size_t dim() const { return dim_; }
  cplx& at(std::size_t r, std::size_t c) { return data_[r * dim_ + c]; }
  const cplx& at(std::size_t r, std::size_t c) const { return data_[r * dim_ + c]; }

  DenseMatrix operator*(const DenseMatrix& rhs) const;
  std::vector<cplx> apply(const std::vector<cplx>& v) const;

  /// Lift a 2x2 matrix acting on `target` into a dim x dim operator for an
  /// n-qubit system (dim == 2^n).
  static DenseMatrix lift1(const Mat2& g, unsigned target, unsigned num_qubits);

  /// Lift a 4x4 matrix acting on (q_high, q_low) ordering convention: the
  /// matrix row/col index is (bit(q1) << 1) | bit(q0) for operands (q1, q0).
  static DenseMatrix lift2(const Mat4& g, unsigned q1, unsigned q0, unsigned num_qubits);

 private:
  std::size_t dim_ = 0;
  std::vector<cplx> data_;
};

}  // namespace rqsim
