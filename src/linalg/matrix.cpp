#include "linalg/matrix.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

Mat2 Mat2::identity() {
  Mat2 r;
  r.at(0, 0) = 1.0;
  r.at(1, 1) = 1.0;
  return r;
}

Mat2 Mat2::zero() { return Mat2{}; }

Mat2 Mat2::operator*(const Mat2& rhs) const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      cplx acc = 0.0;
      for (std::size_t k = 0; k < 2; ++k) {
        acc += at(i, k) * rhs.at(k, j);
      }
      r.at(i, j) = acc;
    }
  }
  return r;
}

Mat2 Mat2::operator*(cplx scale) const {
  Mat2 r = *this;
  for (auto& x : r.m) {
    x *= scale;
  }
  return r;
}

Mat2 Mat2::operator+(const Mat2& rhs) const {
  Mat2 r = *this;
  for (std::size_t i = 0; i < 4; ++i) {
    r.m[i] += rhs.m[i];
  }
  return r;
}

Mat2 Mat2::dagger() const {
  Mat2 r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      r.at(i, j) = std::conj(at(j, i));
    }
  }
  return r;
}

Mat4 Mat4::identity() {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.at(i, i) = 1.0;
  }
  return r;
}

Mat4 Mat4::zero() { return Mat4{}; }

Mat4 Mat4::operator*(const Mat4& rhs) const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      cplx acc = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        acc += at(i, k) * rhs.at(k, j);
      }
      r.at(i, j) = acc;
    }
  }
  return r;
}

Mat4 Mat4::operator*(cplx scale) const {
  Mat4 r = *this;
  for (auto& x : r.m) {
    x *= scale;
  }
  return r;
}

Mat4 Mat4::operator+(const Mat4& rhs) const {
  Mat4 r = *this;
  for (std::size_t i = 0; i < 16; ++i) {
    r.m[i] += rhs.m[i];
  }
  return r;
}

Mat4 Mat4::dagger() const {
  Mat4 r;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      r.at(i, j) = std::conj(at(j, i));
    }
  }
  return r;
}

Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      for (std::size_t k = 0; k < 2; ++k) {
        for (std::size_t l = 0; l < 2; ++l) {
          r.at(2 * i + k, 2 * j + l) = a.at(i, j) * b.at(k, l);
        }
      }
    }
  }
  return r;
}

double frobenius_distance(const Mat2& a, const Mat2& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    acc += std::norm(a.m[i] - b.m[i]);
  }
  return std::sqrt(acc);
}

double frobenius_distance(const Mat4& a, const Mat4& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    acc += std::norm(a.m[i] - b.m[i]);
  }
  return std::sqrt(acc);
}

bool is_unitary(const Mat2& m, double tol) {
  return frobenius_distance(m * m.dagger(), Mat2::identity()) < tol;
}

bool is_unitary(const Mat4& m, double tol) {
  return frobenius_distance(m * m.dagger(), Mat4::identity()) < tol;
}

namespace {

// Find the largest-magnitude entry of b and derive the phase a/b there.
template <typename M, std::size_t N>
bool equal_up_to_phase_impl(const M& a, const M& b, double tol) {
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    if (std::abs(b.m[i]) > best_mag) {
      best_mag = std::abs(b.m[i]);
      best = i;
    }
  }
  if (best_mag < tol) {
    // b is (numerically) zero; compare directly.
    for (std::size_t i = 0; i < N; ++i) {
      if (std::abs(a.m[i]) > tol) {
        return false;
      }
    }
    return true;
  }
  const cplx phase = a.m[best] / b.m[best];
  for (std::size_t i = 0; i < N; ++i) {
    if (std::abs(a.m[i] - phase * b.m[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool equal_up_to_global_phase(const Mat2& a, const Mat2& b, double tol) {
  return equal_up_to_phase_impl<Mat2, 4>(a, b, tol);
}

bool equal_up_to_global_phase(const Mat4& a, const Mat4& b, double tol) {
  return equal_up_to_phase_impl<Mat4, 16>(a, b, tol);
}

namespace {

// Gram-Schmidt orthonormalization of a random Ginibre matrix gives a
// Haar-distributed unitary (up to column phases, which is fine for our use:
// generating generic test/benchmark unitaries).
template <std::size_t Dim, typename M>
M random_unitary_impl(Rng& rng) {
  std::array<std::array<cplx, Dim>, Dim> cols{};
  for (auto& col : cols) {
    for (auto& x : col) {
      x = cplx(rng.normal(), rng.normal());
    }
  }
  for (std::size_t c = 0; c < Dim; ++c) {
    for (std::size_t p = 0; p < c; ++p) {
      cplx proj = 0.0;
      for (std::size_t r = 0; r < Dim; ++r) {
        proj += std::conj(cols[p][r]) * cols[c][r];
      }
      for (std::size_t r = 0; r < Dim; ++r) {
        cols[c][r] -= proj * cols[p][r];
      }
    }
    double norm = 0.0;
    for (std::size_t r = 0; r < Dim; ++r) {
      norm += std::norm(cols[c][r]);
    }
    norm = std::sqrt(norm);
    RQSIM_CHECK(norm > 1e-12, "random_unitary: degenerate Ginibre sample");
    for (std::size_t r = 0; r < Dim; ++r) {
      cols[c][r] /= norm;
    }
  }
  M out;
  for (std::size_t r = 0; r < Dim; ++r) {
    for (std::size_t c = 0; c < Dim; ++c) {
      out.at(r, c) = cols[c][r];
    }
  }
  return out;
}

}  // namespace

Mat2 random_unitary2(Rng& rng) { return random_unitary_impl<2, Mat2>(rng); }
Mat4 random_unitary4(Rng& rng) { return random_unitary_impl<4, Mat4>(rng); }

DenseMatrix::DenseMatrix(std::size_t dim) : dim_(dim), data_(dim * dim, cplx(0.0)) {}

DenseMatrix DenseMatrix::identity(std::size_t dim) {
  DenseMatrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

DenseMatrix DenseMatrix::operator*(const DenseMatrix& rhs) const {
  RQSIM_CHECK(dim_ == rhs.dim_, "DenseMatrix::operator*: dimension mismatch");
  DenseMatrix r(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const cplx a = at(i, k);
      if (a == cplx(0.0)) {
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        r.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return r;
}

std::vector<cplx> DenseMatrix::apply(const std::vector<cplx>& v) const {
  RQSIM_CHECK(v.size() == dim_, "DenseMatrix::apply: dimension mismatch");
  std::vector<cplx> out(dim_, cplx(0.0));
  for (std::size_t i = 0; i < dim_; ++i) {
    cplx acc = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) {
      acc += at(i, j) * v[j];
    }
    out[i] = acc;
  }
  return out;
}

DenseMatrix DenseMatrix::lift1(const Mat2& g, unsigned target, unsigned num_qubits) {
  RQSIM_CHECK(target < num_qubits, "lift1: target out of range");
  const std::size_t dim = pow2(num_qubits);
  DenseMatrix out(dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const unsigned bit = get_bit(col, target);
    for (unsigned row_bit = 0; row_bit < 2; ++row_bit) {
      const cplx amp = g.at(row_bit, bit);
      if (amp == cplx(0.0)) {
        continue;
      }
      out.at(set_bit(col, target, row_bit), col) += amp;
    }
  }
  return out;
}

DenseMatrix DenseMatrix::lift2(const Mat4& g, unsigned q1, unsigned q0, unsigned num_qubits) {
  RQSIM_CHECK(q1 < num_qubits && q0 < num_qubits && q1 != q0, "lift2: bad operands");
  const std::size_t dim = pow2(num_qubits);
  DenseMatrix out(dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const unsigned in = (get_bit(col, q1) << 1) | get_bit(col, q0);
    for (unsigned rowpair = 0; rowpair < 4; ++rowpair) {
      const cplx amp = g.at(rowpair, in);
      if (amp == cplx(0.0)) {
        continue;
      }
      std::uint64_t row = set_bit(col, q1, (rowpair >> 1) & 1U);
      row = set_bit(row, q0, rowpair & 1U);
      out.at(row, col) += amp;
    }
  }
  return out;
}

}  // namespace rqsim
