// Pauli algebra: the error operators injected by the noise channels.
//
// Single-qubit errors are X, Y, Z. Two-qubit errors are the 15 non-identity
// elements of {I,X,Y,Z} ⊗ {I,X,Y,Z} (symmetric two-qubit depolarizing).
#pragma once

#include <cstdint>
#include <string>

#include "linalg/matrix.hpp"

namespace rqsim {

/// Single-qubit Pauli operator (I only appears in two-qubit pairs).
enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/// 2x2 matrix of a Pauli operator.
Mat2 pauli_matrix(Pauli p);

/// One-letter name ("I", "X", "Y", "Z").
std::string pauli_name(Pauli p);

/// A two-qubit Pauli pair P1 ⊗ P0.
struct PauliPair {
  Pauli p1 = Pauli::I;  // acts on the higher-listed operand
  Pauli p0 = Pauli::I;  // acts on the lower-listed operand
};

/// Encode/decode a PauliPair to an index in [0, 16): index = 4*p1 + p0.
std::uint8_t pauli_pair_index(PauliPair pair);
PauliPair pauli_pair_from_index(std::uint8_t index);

/// 4x4 matrix of a Pauli pair.
Mat4 pauli_pair_matrix(PauliPair pair);

/// Two-letter name, e.g. "XZ".
std::string pauli_pair_name(PauliPair pair);

/// Number of non-identity single-qubit Paulis (X, Y, Z).
inline constexpr int kNumSinglePaulis = 3;

/// Number of non-identity two-qubit Pauli pairs.
inline constexpr int kNumPairPaulis = 15;

/// The k-th non-identity single Pauli, k in [0, 3): X, Y, Z.
Pauli nth_single_pauli(int k);

/// The k-th non-identity Pauli pair, k in [0, 15), skipping I⊗I.
PauliPair nth_pair_pauli(int k);

}  // namespace rqsim
