#include "linalg/pauli.hpp"

#include "common/error.hpp"

namespace rqsim {

Mat2 pauli_matrix(Pauli p) {
  Mat2 m;
  switch (p) {
    case Pauli::I:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = 1.0;
      break;
    case Pauli::X:
      m.at(0, 1) = 1.0;
      m.at(1, 0) = 1.0;
      break;
    case Pauli::Y:
      m.at(0, 1) = cplx(0.0, -1.0);
      m.at(1, 0) = cplx(0.0, 1.0);
      break;
    case Pauli::Z:
      m.at(0, 0) = 1.0;
      m.at(1, 1) = -1.0;
      break;
  }
  return m;
}

std::string pauli_name(Pauli p) {
  switch (p) {
    case Pauli::I:
      return "I";
    case Pauli::X:
      return "X";
    case Pauli::Y:
      return "Y";
    case Pauli::Z:
      return "Z";
  }
  return "?";
}

std::uint8_t pauli_pair_index(PauliPair pair) {
  return static_cast<std::uint8_t>(4 * static_cast<int>(pair.p1) + static_cast<int>(pair.p0));
}

PauliPair pauli_pair_from_index(std::uint8_t index) {
  RQSIM_CHECK(index < 16, "pauli_pair_from_index: index out of range");
  return PauliPair{static_cast<Pauli>(index / 4), static_cast<Pauli>(index % 4)};
}

Mat4 pauli_pair_matrix(PauliPair pair) {
  return kron(pauli_matrix(pair.p1), pauli_matrix(pair.p0));
}

std::string pauli_pair_name(PauliPair pair) {
  return pauli_name(pair.p1) + pauli_name(pair.p0);
}

Pauli nth_single_pauli(int k) {
  RQSIM_CHECK(k >= 0 && k < kNumSinglePaulis, "nth_single_pauli: k out of range");
  return static_cast<Pauli>(k + 1);
}

PauliPair nth_pair_pauli(int k) {
  RQSIM_CHECK(k >= 0 && k < kNumPairPaulis, "nth_pair_pauli: k out of range");
  // Skip index 0 (I ⊗ I).
  return pauli_pair_from_index(static_cast<std::uint8_t>(k + 1));
}

}  // namespace rqsim
