#include "trial/frame.hpp"

#include "common/error.hpp"
#include "linalg/pauli.hpp"

namespace rqsim {

namespace {

// 2-bit (x | z<<1) code of a Pauli enum value.
unsigned pauli_code(Pauli p) {
  switch (p) {
    case Pauli::I:
      return 0;
    case Pauli::X:
      return 1;
    case Pauli::Z:
      return 2;
    case Pauli::Y:
      return 3;
  }
  return 0;
}

void xor_pauli(PauliFrame& frame, Pauli p, qubit_t q) {
  const unsigned code = pauli_code(p);
  frame.x ^= static_cast<std::uint64_t>(code & 1u) << q;
  frame.z ^= static_cast<std::uint64_t>(code >> 1) << q;
}

std::uint64_t gate_support(const Gate& gate) {
  std::uint64_t mask = 0;
  const int arity = gate.arity();
  for (int i = 0; i < arity; ++i) {
    mask |= std::uint64_t{1} << gate.qubits[static_cast<std::size_t>(i)];
  }
  return mask;
}

}  // namespace

PauliFrame frame_from_event(const Circuit& circuit, const ErrorEvent& event) {
  PauliFrame frame;
  const std::size_t num_gates = circuit.num_gates();
  if (is_idle_position(num_gates, event.position)) {
    xor_pauli(frame, static_cast<Pauli>(event.op),
              idle_qubit(num_gates, event.position));
    return frame;
  }
  const Gate& gate = circuit.gates()[event.position];
  if (gate.arity() == 1) {
    xor_pauli(frame, static_cast<Pauli>(event.op), gate.qubits[0]);
    return frame;
  }
  RQSIM_CHECK(gate.arity() == 2, "frame_from_event: unsupported gate arity");
  const PauliPair pair = pauli_pair_from_index(event.op);
  xor_pauli(frame, pair.p1, gate.qubits[0]);
  xor_pauli(frame, pair.p0, gate.qubits[1]);
  return frame;
}

bool conjugate_frame_through_gate(PauliFrame& frame, const Gate& gate,
                                  bool& touched) {
  const std::uint64_t support = gate_support(gate);
  if ((frame.support() & support) == 0) {
    touched = false;
    return true;  // disjoint tensor factors commute
  }
  touched = true;
  if (gate.is_clifford()) {
    const PauliConjugation& table = *gate.pauli_conjugation();
    if (gate.arity() == 1) {
      const qubit_t q = gate.qubits[0];
      const unsigned in = static_cast<unsigned>((frame.x >> q) & 1u) |
                          static_cast<unsigned>((frame.z >> q) & 1u) << 1;
      const unsigned out = table.one[in];
      frame.x = (frame.x & ~(std::uint64_t{1} << q)) |
                static_cast<std::uint64_t>(out & 1u) << q;
      frame.z = (frame.z & ~(std::uint64_t{1} << q)) |
                static_cast<std::uint64_t>(out >> 1) << q;
    } else {
      const qubit_t a = gate.qubits[0];
      const qubit_t b = gate.qubits[1];
      const unsigned in = static_cast<unsigned>((frame.x >> a) & 1u) |
                          static_cast<unsigned>((frame.z >> a) & 1u) << 1 |
                          static_cast<unsigned>((frame.x >> b) & 1u) << 2 |
                          static_cast<unsigned>((frame.z >> b) & 1u) << 3;
      const unsigned out = table.two[in];
      const std::uint64_t clear =
          ~((std::uint64_t{1} << a) | (std::uint64_t{1} << b));
      frame.x = (frame.x & clear) | static_cast<std::uint64_t>(out & 1u) << a |
                static_cast<std::uint64_t>((out >> 2) & 1u) << b;
      frame.z = (frame.z & clear) |
                static_cast<std::uint64_t>((out >> 1) & 1u) << a |
                static_cast<std::uint64_t>((out >> 3) & 1u) << b;
    }
    return true;
  }
  // Non-Clifford: the frame may still commute past it exactly. Diagonal
  // gates commute with a Z-only frame on their qubits; nothing commutes
  // with an X/Y component on a non-Clifford gate's support.
  if (gate_is_diagonal(gate.kind)) {
    return (frame.x & support) == 0;
  }
  return false;
}

FramePropagation propagate_frame_to_end(const Circuit& circuit,
                                        const Layering& layering,
                                        const Trial& trial,
                                        std::size_t event_depth) {
  FramePropagation result;
  const std::size_t num_events = trial.events.size();
  if (event_depth >= num_events) {
    result.ok = true;
    return result;  // nothing left to push: identity frame
  }
  std::size_t ei = event_depth;
  const std::size_t num_layers = layering.num_layers();
  for (std::size_t layer = trial.events[ei].layer; layer < num_layers; ++layer) {
    // Gates of `layer` act before the errors hosted at the end of `layer`.
    if (!result.frame.identity()) {
      for (const gate_index_t g : layering.layers[layer]) {
        bool touched = false;
        if (!conjugate_frame_through_gate(result.frame, circuit.gates()[g],
                                          touched)) {
          return result;  // blocked: ok stays false
        }
        if (touched) {
          ++result.frame_ops;
        }
      }
    }
    while (ei < num_events && trial.events[ei].layer == layer) {
      const PauliFrame ef = frame_from_event(circuit, trial.events[ei]);
      result.frame.x ^= ef.x;
      result.frame.z ^= ef.z;
      ++ei;
    }
  }
  RQSIM_CHECK(ei == num_events, "propagate_frame_to_end: event past last layer");
  result.ok = true;
  return result;
}

std::uint64_t frame_outcome_flip(const PauliFrame& frame,
                                 const std::vector<qubit_t>& measured_qubits) {
  std::uint64_t flip = 0;
  for (std::size_t k = 0; k < measured_qubits.size(); ++k) {
    if ((frame.x >> measured_qubits[k]) & 1u) {
      flip |= std::uint64_t{1} << k;
    }
  }
  return flip;
}

bool frame_x_confined_to(const PauliFrame& frame, std::uint64_t measured_mask) {
  return (frame.x & ~measured_mask) == 0;
}

}  // namespace rqsim
