// Descriptive statistics over a trial set — used by reports and to sanity
// check generated workloads against the error model.
#pragma once

#include <cstddef>
#include <vector>

#include "trial/trial.hpp"

namespace rqsim {

struct TrialSetStats {
  std::size_t num_trials = 0;
  std::size_t total_errors = 0;
  std::size_t max_errors = 0;
  std::size_t error_free_trials = 0;
  double mean_errors = 0.0;
  /// histogram[k] = number of trials with exactly k errors.
  std::vector<std::size_t> error_count_histogram;
};

TrialSetStats compute_trial_stats(const std::vector<Trial>& trials);

/// Mean shared-prefix length between consecutive trials in the given order
/// — the quantity the reorder maximizes.
double mean_consecutive_shared_prefix(const std::vector<Trial>& trials);

}  // namespace rqsim
