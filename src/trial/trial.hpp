// Monte Carlo trial representation.
//
// A trial is a sparse list of error events — one per gate that misfired —
// plus a classical measurement-flip mask. Events are keyed by
// (layer, position, op): `layer` is the ASAP layer whose end hosts the
// error, `position` is the index of the gate the error is attached to, and
// `op` encodes the injected Pauli (1..3 = X/Y/Z for single-qubit gates,
// 1..15 = non-identity Pauli pair index for two-qubit gates).
//
// Idle errors (noise without an operation, paper Section III.B.1) use a
// virtual position past the gate range: position = num_gates + qubit, with
// op in 1..3. Within a layer they therefore sort after all gate errors,
// giving every execution path the same deterministic order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rqsim {

struct ErrorEvent {
  layer_index_t layer = 0;
  gate_index_t position = 0;
  std::uint8_t op = 0;

  friend bool operator==(const ErrorEvent& a, const ErrorEvent& b) {
    return a.layer == b.layer && a.position == b.position && a.op == b.op;
  }

  /// Strict ordering by (layer, position, op) — the reorder key.
  friend bool operator<(const ErrorEvent& a, const ErrorEvent& b) {
    if (a.layer != b.layer) {
      return a.layer < b.layer;
    }
    if (a.position != b.position) {
      return a.position < b.position;
    }
    return a.op < b.op;
  }
};

struct Trial {
  /// Error events sorted by (layer, position).
  std::vector<ErrorEvent> events;

  /// Bit k set = classical measurement bit k is flipped.
  std::uint64_t meas_flip_mask = 0;

  /// Seed of this trial's private outcome-sampling stream (see
  /// trial/generator.hpp, assign_measurement_seeds). Sampling from a
  /// per-trial seed instead of one shared stream makes the sampled
  /// histogram independent of execution order, which is what lets the
  /// parallel tree executor reproduce the sequential scheduler's results
  /// bit for bit under any thread interleaving.
  std::uint64_t meas_seed = 0;

  std::size_t num_errors() const { return events.size(); }
};

/// Length of the longest shared event prefix of two trials.
std::size_t shared_prefix_length(const Trial& a, const Trial& b);

/// Idle-event position encoding (relative to a circuit's gate count).
constexpr gate_index_t idle_position(std::size_t num_gates, qubit_t qubit) {
  return static_cast<gate_index_t>(num_gates) + qubit;
}
constexpr bool is_idle_position(std::size_t num_gates, gate_index_t position) {
  return position >= num_gates;
}
constexpr qubit_t idle_qubit(std::size_t num_gates, gate_index_t position) {
  return position - static_cast<gate_index_t>(num_gates);
}

}  // namespace rqsim
