#include "trial/trial.hpp"

#include <algorithm>

namespace rqsim {

std::size_t shared_prefix_length(const Trial& a, const Trial& b) {
  const std::size_t limit = std::min(a.events.size(), b.events.size());
  std::size_t k = 0;
  while (k < limit && a.events[k] == b.events[k]) {
    ++k;
  }
  return k;
}

}  // namespace rqsim
