#include "trial/stats.hpp"

#include <algorithm>

namespace rqsim {

TrialSetStats compute_trial_stats(const std::vector<Trial>& trials) {
  TrialSetStats stats;
  stats.num_trials = trials.size();
  for (const Trial& t : trials) {
    const std::size_t k = t.num_errors();
    stats.total_errors += k;
    stats.max_errors = std::max(stats.max_errors, k);
    if (k == 0) {
      ++stats.error_free_trials;
    }
    if (k >= stats.error_count_histogram.size()) {
      stats.error_count_histogram.resize(k + 1, 0);
    }
    ++stats.error_count_histogram[k];
  }
  stats.mean_errors = trials.empty()
                          ? 0.0
                          : static_cast<double>(stats.total_errors) /
                                static_cast<double>(trials.size());
  return stats;
}

double mean_consecutive_shared_prefix(const std::vector<Trial>& trials) {
  if (trials.size() < 2) {
    return 0.0;
  }
  std::size_t total = 0;
  for (std::size_t i = 1; i < trials.size(); ++i) {
    total += shared_prefix_length(trials[i - 1], trials[i]);
  }
  return static_cast<double>(total) / static_cast<double>(trials.size() - 1);
}

}  // namespace rqsim
