// Static Monte Carlo trial generation (paper Section IV.B, step 1):
// sample every trial's error injections *before* any simulation runs.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"
#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "trial/trial.hpp"

namespace rqsim {

/// Sample one trial: walk every gate, injecting a uniformly chosen
/// non-identity Pauli (pair) with the gate's depolarizing probability, and
/// sample measurement bit flips. Events are returned sorted by
/// (layer, position). The circuit must contain only 1- and 2-qubit gates.
Trial generate_trial(const Circuit& circuit, const Layering& layering,
                     const NoiseModel& noise, Rng& rng);

/// Sample `num_trials` independent trials.
///
/// Implementation note: gates are bucketed into classes of equal error
/// rate and each class is sampled with geometric skips, so the cost per
/// trial is O(#errors + #classes) instead of O(#gates). The distribution
/// is identical to per-gate Bernoulli sampling (the RNG stream differs
/// from repeated generate_trial calls).
std::vector<Trial> generate_trials(const Circuit& circuit, const Layering& layering,
                                   const NoiseModel& noise, std::size_t num_trials,
                                   Rng& rng);

/// Assign each trial a private outcome-sampling seed (Trial::meas_seed),
/// drawn from `rng` in trial order. Kept out of generate_trials so the
/// generation stream — and therefore every previously generated trial set —
/// is unchanged; entry points that sample outcomes call this immediately
/// after generation, *before* reordering, so a trial keeps its seed
/// wherever the schedule places it.
void assign_measurement_seeds(std::vector<Trial>& trials, Rng& rng);

}  // namespace rqsim
