// Pauli frames: tracked error operators in the symplectic (x, z) mask
// representation.
//
// An injected error is always a Pauli (noise/noise_model.hpp). Instead of
// forking a statevector for a trial whose remaining path is Clifford-only,
// the scheduler can keep simulating the *error-free* state and carry the
// error as a frame F with state = F·|ψ⟩ (up to a global ±1/±i phase, which
// cancels in |amplitude|² and in expectation magnitudes): each Clifford
// gate G rewrites the frame to G·F·G† by a 4- or 16-entry table lookup
// (circuit/gate.hpp, PauliConjugation), and measurement applies the frame
// as a basis permutation of the shared probability vector plus a sign on
// Z-only observables. The whole subtree of such trials collapses into
// integer bookkeeping — no matvec ops, no buffer.
//
// Frames commute past gates they don't have to transform through:
//  - any gate whose qubit support is disjoint from the frame's,
//  - diagonal gates (T, Tdg, P, RZ, CP) when the frame is Z-only on the
//    gate's qubits (diagonal matrices commute exactly).
// A non-Clifford gate that fails both tests *blocks* the frame: the trial
// cannot be collapsed from that point and must keep its own statevector.
//
// The masks are per-qubit bit pairs over at most 63 qubits: bit q of `x`
// (`z`) set means the frame applies X (Z) on qubit q; both set means Y.
// All frame algebra is exact integer arithmetic — there is no float in
// this header, which is what makes collapsed trials bitwise-reproducible.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "circuit/layering.hpp"
#include "common/types.hpp"
#include "trial/trial.hpp"

namespace rqsim {

struct PauliFrame {
  std::uint64_t x = 0;
  std::uint64_t z = 0;

  bool identity() const { return x == 0 && z == 0; }
  std::uint64_t support() const { return x | z; }

  friend bool operator==(const PauliFrame& a, const PauliFrame& b) {
    return a.x == b.x && a.z == b.z;
  }
};

/// Decode an error event into its frame (the same decoding
/// sched/backend.cpp uses to apply the event to a statevector).
PauliFrame frame_from_event(const Circuit& circuit, const ErrorEvent& event);

/// Rewrite `frame` to G·frame·G† (sign dropped) if the gate is Clifford,
/// or verify the frame commutes past a non-Clifford gate. Returns false if
/// the gate blocks the frame (see file comment). `touched` is set to true
/// when the gate actually transformed or could have transformed the frame
/// (support overlap) — the unit the frame_ops counters bill.
bool conjugate_frame_through_gate(PauliFrame& frame, const Gate& gate,
                                  bool& touched);

/// Result of pushing a trial's remaining errors to the end of the circuit.
struct FramePropagation {
  bool ok = false;       // false: some gate blocked the frame
  PauliFrame frame;      // final frame at the end of the circuit
  opcount_t frame_ops = 0;  // table-lookup conjugations performed
};

/// Propagate the frames of trial.events[event_depth..] through the rest of
/// the circuit. Event semantics match the scheduler: an error at layer L
/// applies after the gates of layer L, so its frame joins the walk just
/// before layer L+1. Stops (ok = false) at the first blocking gate.
FramePropagation propagate_frame_to_end(const Circuit& circuit,
                                        const Layering& layering,
                                        const Trial& trial,
                                        std::size_t event_depth);

/// Outcome-bit flip mask of a frame: bit k set iff the frame applies X or
/// Y on measured_qubits[k]. A final state F·|ψ⟩ has
/// probs'[b] = probs[b ^ flip] for every outcome b — the X part of the
/// frame permutes the computational basis, the Z part only adds phases.
std::uint64_t frame_outcome_flip(const PauliFrame& frame,
                                 const std::vector<qubit_t>& measured_qubits);

/// True when the frame's X part is confined to `measured_mask` (OR of
/// 1 << q over measured qubits). Required for collapse: an X on an
/// *unmeasured* qubit permutes amplitudes within the marginalization
/// buckets, which floating-point addition order would then observe.
bool frame_x_confined_to(const PauliFrame& frame, std::uint64_t measured_mask);

}  // namespace rqsim
