#include "trial/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/pauli.hpp"

namespace rqsim {

namespace {

// Sample an op code 1..3 (X/Y/Z) from normalized weights.
std::uint8_t sample_biased_pauli(const std::array<double, 3>& weights, Rng& rng) {
  const double r = rng.uniform();
  if (r < weights[0]) {
    return 1;
  }
  if (r < weights[0] + weights[1]) {
    return 2;
  }
  return 3;
}

}  // namespace

Trial generate_trial(const Circuit& circuit, const Layering& layering,
                     const NoiseModel& noise, Rng& rng) {
  RQSIM_CHECK(layering.layer_of_gate.size() == circuit.num_gates(),
              "generate_trial: layering does not match circuit");
  Trial trial;
  for (gate_index_t g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gates()[g];
    const int arity = gate.arity();
    RQSIM_CHECK(arity <= 2,
                "generate_trial: circuit must be decomposed to 1- and 2-qubit gates");
    const double rate = arity == 1
                            ? noise.single_qubit_rate(gate.qubits[0])
                            : noise.two_qubit_rate(gate.qubits[0], gate.qubits[1]);
    if (rate <= 0.0 || !rng.bernoulli(rate)) {
      continue;
    }
    ErrorEvent event;
    event.layer = layering.layer_of_gate[g];
    event.position = g;
    if (arity == 1) {
      event.op = sample_biased_pauli(noise.single_pauli_weights(gate.qubits[0]), rng);
    } else {
      event.op = static_cast<std::uint8_t>(1 + rng.uniform_int(kNumPairPaulis));
    }
    trial.events.push_back(event);
  }
  // Idle errors: per layer, per qubit.
  if (noise.has_idle_noise()) {
    for (layer_index_t l = 0; l < layering.num_layers(); ++l) {
      for (qubit_t q = 0; q < circuit.num_qubits(); ++q) {
        const double rate = noise.idle_pauli_rate(q);
        if (rate > 0.0 && rng.bernoulli(rate)) {
          ErrorEvent event;
          event.layer = l;
          event.position = idle_position(circuit.num_gates(), q);
          event.op = sample_biased_pauli(noise.idle_pauli_weights(q), rng);
          trial.events.push_back(event);
        }
      }
    }
  }
  // Gate-index order is not layer order in general; sort into execution order.
  std::sort(trial.events.begin(), trial.events.end());

  for (std::size_t bit = 0; bit < circuit.num_measured(); ++bit) {
    const double flip = noise.measurement_flip_rate(circuit.measured_qubits()[bit]);
    if (flip > 0.0 && rng.bernoulli(flip)) {
      trial.meas_flip_mask |= std::uint64_t{1} << bit;
    }
  }
  return trial;
}

namespace {

// Gates sharing one error rate, sampled together with geometric skips.
struct RateClass {
  double rate = 0.0;
  double inv_log_keep = 0.0;  // 1 / log(1 - rate), rate in (0, 1)
  std::vector<gate_index_t> gates;
};

std::vector<RateClass> build_rate_classes(const Circuit& circuit,
                                          const NoiseModel& noise) {
  std::vector<RateClass> classes;
  for (gate_index_t g = 0; g < circuit.num_gates(); ++g) {
    const Gate& gate = circuit.gates()[g];
    const int arity = gate.arity();
    RQSIM_CHECK(arity <= 2,
                "generate_trials: circuit must be decomposed to 1- and 2-qubit gates");
    const double rate = arity == 1
                            ? noise.single_qubit_rate(gate.qubits[0])
                            : noise.two_qubit_rate(gate.qubits[0], gate.qubits[1]);
    if (rate <= 0.0) {
      continue;
    }
    auto it = std::find_if(classes.begin(), classes.end(),
                           [rate](const RateClass& c) { return c.rate == rate; });
    if (it == classes.end()) {
      RateClass c;
      c.rate = rate;
      c.inv_log_keep = rate < 1.0 ? 1.0 / std::log1p(-rate) : 0.0;
      classes.push_back(std::move(c));
      it = classes.end() - 1;
    }
    it->gates.push_back(g);
  }
  return classes;
}

}  // namespace

namespace {

// Qubits sharing one idle rate; sampled over the flattened
// (layer-major, qubit-minor) position sequence with geometric skips.
struct IdleClass {
  double rate = 0.0;
  double inv_log_keep = 0.0;
  std::vector<qubit_t> qubits;
};

std::vector<IdleClass> build_idle_classes(const Circuit& circuit,
                                          const NoiseModel& noise) {
  std::vector<IdleClass> classes;
  if (!noise.has_idle_noise()) {
    return classes;
  }
  for (qubit_t q = 0; q < circuit.num_qubits(); ++q) {
    const double rate = noise.idle_pauli_rate(q);
    if (rate <= 0.0) {
      continue;
    }
    auto it = std::find_if(classes.begin(), classes.end(),
                           [rate](const IdleClass& c) { return c.rate == rate; });
    if (it == classes.end()) {
      IdleClass c;
      c.rate = rate;
      c.inv_log_keep = rate < 1.0 ? 1.0 / std::log1p(-rate) : 0.0;
      classes.push_back(std::move(c));
      it = classes.end() - 1;
    }
    it->qubits.push_back(q);
  }
  return classes;
}

}  // namespace

std::vector<Trial> generate_trials(const Circuit& circuit, const Layering& layering,
                                   const NoiseModel& noise, std::size_t num_trials,
                                   Rng& rng) {
  RQSIM_CHECK(layering.layer_of_gate.size() == circuit.num_gates(),
              "generate_trials: layering does not match circuit");
  const std::vector<RateClass> classes = build_rate_classes(circuit, noise);
  const std::vector<IdleClass> idle_classes = build_idle_classes(circuit, noise);

  std::vector<double> meas_rates(circuit.num_measured());
  for (std::size_t bit = 0; bit < circuit.num_measured(); ++bit) {
    meas_rates[bit] = noise.measurement_flip_rate(circuit.measured_qubits()[bit]);
  }

  std::vector<Trial> trials;
  trials.reserve(num_trials);
  for (std::size_t i = 0; i < num_trials; ++i) {
    Trial trial;
    for (const RateClass& cls : classes) {
      std::size_t index = 0;
      while (index < cls.gates.size()) {
        if (cls.rate < 1.0) {
          // Geometric skip: number of error-free gates before the next hit.
          const double u = rng.uniform();
          const double skip = std::floor(std::log1p(-u) * cls.inv_log_keep);
          if (skip >= static_cast<double>(cls.gates.size() - index)) {
            break;
          }
          index += static_cast<std::size_t>(skip);
        }
        const gate_index_t g = cls.gates[index];
        ErrorEvent event;
        event.layer = layering.layer_of_gate[g];
        event.position = g;
        if (circuit.gates()[g].arity() == 1) {
          event.op =
              sample_biased_pauli(noise.single_pauli_weights(circuit.gates()[g].qubits[0]), rng);
        } else {
          event.op = static_cast<std::uint8_t>(1 + rng.uniform_int(kNumPairPaulis));
        }
        trial.events.push_back(event);
        ++index;
      }
    }
    for (const IdleClass& cls : idle_classes) {
      const std::size_t width = cls.qubits.size();
      const std::size_t total = layering.num_layers() * width;
      std::size_t index = 0;
      while (index < total) {
        if (cls.rate < 1.0) {
          const double u = rng.uniform();
          const double skip = std::floor(std::log1p(-u) * cls.inv_log_keep);
          if (skip >= static_cast<double>(total - index)) {
            break;
          }
          index += static_cast<std::size_t>(skip);
        }
        const qubit_t q = cls.qubits[index % width];
        ErrorEvent event;
        event.layer = static_cast<layer_index_t>(index / width);
        event.position = idle_position(circuit.num_gates(), q);
        event.op = sample_biased_pauli(noise.idle_pauli_weights(q), rng);
        trial.events.push_back(event);
        ++index;
      }
    }
    std::sort(trial.events.begin(), trial.events.end());
    for (std::size_t bit = 0; bit < meas_rates.size(); ++bit) {
      if (meas_rates[bit] > 0.0 && rng.bernoulli(meas_rates[bit])) {
        trial.meas_flip_mask |= std::uint64_t{1} << bit;
      }
    }
    trials.push_back(std::move(trial));
  }
  return trials;
}

void assign_measurement_seeds(std::vector<Trial>& trials, Rng& rng) {
  for (Trial& trial : trials) {
    trial.meas_seed = rng.next_u64();
  }
}

}  // namespace rqsim
