// Bernstein-Vazirani: recover a hidden bitstring s with one oracle query.
// Circuit: H on all, oracle (CX from each data qubit with s_k = 1 into the
// ancilla prepared in |−⟩), H on data qubits, measure data qubits.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// `num_data_qubits` data qubits plus one ancilla; `secret` uses the low
/// `num_data_qubits` bits. The paper's bv4 = make_bv(3, s), bv5 = make_bv(4, s)
/// (qubit counts in Table I include the ancilla).
Circuit make_bv(unsigned num_data_qubits, std::uint64_t secret);

}  // namespace rqsim
