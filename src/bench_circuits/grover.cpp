#include "bench_circuits/grover.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

namespace {

// Phase flip of |111⟩ via CCZ = H(target) CCX H(target).
void add_ccz(Circuit& c) {
  c.h(2);
  c.ccx(0, 1, 2);
  c.h(2);
}

// Flip the zero-bits of `pattern` so the CCZ marks exactly |pattern⟩.
void add_pattern_frame(Circuit& c, std::uint64_t pattern) {
  for (qubit_t q = 0; q < 3; ++q) {
    if (!get_bit(pattern, q)) {
      c.x(q);
    }
  }
}

}  // namespace

Circuit make_grover(unsigned num_qubits, std::uint64_t marked,
                    unsigned iterations) {
  RQSIM_CHECK(num_qubits >= 4 && num_qubits % 2 == 0,
              "make_grover: num_qubits must be even and >= 4");
  RQSIM_CHECK(iterations >= 1, "make_grover: need at least one iteration");
  const unsigned d = (num_qubits + 2) / 2;  // data qubits; d - 2 ancillas
  RQSIM_CHECK(marked < (std::uint64_t{1} << d),
              "make_grover: marked state must fit the data register");
  const auto anc0 = static_cast<qubit_t>(d);
  Circuit c(num_qubits, "grover");

  // Flip the zero-bits of `pattern` so the phase flip marks |pattern⟩.
  const auto pattern_frame = [&c, d](std::uint64_t pattern) {
    for (qubit_t q = 0; q < static_cast<qubit_t>(d); ++q) {
      if (!get_bit(pattern, q)) {
        c.x(q);
      }
    }
  };

  // Phase flip of |1...1⟩ on the data register: Toffoli AND-chain of the
  // first d - 1 data qubits into the ancillas, CZ (= H·CX·H) against the
  // last data qubit, then uncompute the chain back to |0⟩.
  const auto mcz = [&c, d, anc0] {
    c.ccx(0, 1, anc0);
    for (unsigned i = 1; i + 2 < d; ++i) {
      c.ccx(static_cast<qubit_t>(i + 1), static_cast<qubit_t>(anc0 + i - 1),
            static_cast<qubit_t>(anc0 + i));
    }
    const auto last = static_cast<qubit_t>(anc0 + d - 3);
    const auto target = static_cast<qubit_t>(d - 1);
    c.h(target);
    c.cx(last, target);
    c.h(target);
    for (unsigned i = d - 3; i >= 1; --i) {
      c.ccx(static_cast<qubit_t>(i + 1), static_cast<qubit_t>(anc0 + i - 1),
            static_cast<qubit_t>(anc0 + i));
    }
    c.ccx(0, 1, anc0);
  };

  for (qubit_t q = 0; q < static_cast<qubit_t>(d); ++q) {
    c.h(q);
  }
  for (unsigned it = 0; it < iterations; ++it) {
    pattern_frame(marked);
    mcz();
    pattern_frame(marked);
    for (qubit_t q = 0; q < static_cast<qubit_t>(d); ++q) {
      c.h(q);
    }
    pattern_frame(0);
    mcz();
    pattern_frame(0);
    for (qubit_t q = 0; q < static_cast<qubit_t>(d); ++q) {
      c.h(q);
    }
  }
  c.measure_all();
  return c;
}

Circuit make_grover3(std::uint64_t marked, unsigned iterations) {
  RQSIM_CHECK(marked < 8, "make_grover3: marked state must be in [0, 8)");
  RQSIM_CHECK(iterations >= 1, "make_grover3: need at least one iteration");
  Circuit c(3, "grover");
  for (qubit_t q = 0; q < 3; ++q) {
    c.h(q);
  }
  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: flip the phase of |marked⟩.
    add_pattern_frame(c, marked);
    add_ccz(c);
    add_pattern_frame(c, marked);
    // Diffusion: 2|s⟩⟨s| − I = H⊗3 · (phase flip of |000⟩) · H⊗3.
    for (qubit_t q = 0; q < 3; ++q) {
      c.h(q);
    }
    add_pattern_frame(c, 0);
    add_ccz(c);
    add_pattern_frame(c, 0);
    for (qubit_t q = 0; q < 3; ++q) {
      c.h(q);
    }
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
