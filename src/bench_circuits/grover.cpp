#include "bench_circuits/grover.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

namespace {

// Phase flip of |111⟩ via CCZ = H(target) CCX H(target).
void add_ccz(Circuit& c) {
  c.h(2);
  c.ccx(0, 1, 2);
  c.h(2);
}

// Flip the zero-bits of `pattern` so the CCZ marks exactly |pattern⟩.
void add_pattern_frame(Circuit& c, std::uint64_t pattern) {
  for (qubit_t q = 0; q < 3; ++q) {
    if (!get_bit(pattern, q)) {
      c.x(q);
    }
  }
}

}  // namespace

Circuit make_grover3(std::uint64_t marked, unsigned iterations) {
  RQSIM_CHECK(marked < 8, "make_grover3: marked state must be in [0, 8)");
  RQSIM_CHECK(iterations >= 1, "make_grover3: need at least one iteration");
  Circuit c(3, "grover");
  for (qubit_t q = 0; q < 3; ++q) {
    c.h(q);
  }
  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: flip the phase of |marked⟩.
    add_pattern_frame(c, marked);
    add_ccz(c);
    add_pattern_frame(c, marked);
    // Diffusion: 2|s⟩⟨s| − I = H⊗3 · (phase flip of |000⟩) · H⊗3.
    for (qubit_t q = 0; q < 3; ++q) {
      c.h(q);
    }
    add_pattern_frame(c, 0);
    add_ccz(c);
    add_pattern_frame(c, 0);
    for (qubit_t q = 0; q < 3; ++q) {
      c.h(q);
    }
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
