#include "bench_circuits/qft.hpp"

#include "common/error.hpp"
#include "common/types.hpp"

namespace rqsim {

Circuit make_qft(unsigned num_qubits, bool with_swaps) {
  RQSIM_CHECK(num_qubits >= 1, "make_qft: need at least one qubit");
  Circuit c(num_qubits, "qft" + std::to_string(num_qubits));
  for (unsigned target = num_qubits; target-- > 0;) {
    c.h(target);
    for (unsigned k = target; k-- > 0;) {
      // Controlled phase by pi / 2^(target - k).
      const double angle = kPi / static_cast<double>(std::uint64_t{1} << (target - k));
      c.cp(k, target, angle);
    }
  }
  if (with_swaps) {
    for (unsigned q = 0; q < num_qubits / 2; ++q) {
      c.swap(q, num_qubits - 1 - q);
    }
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
