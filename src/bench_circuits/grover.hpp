// Grover search on 3 qubits: phase oracle marking one basis state plus the
// standard diffusion operator, iterated (2 iterations are optimal for 8
// entries, matching the paper's grover benchmark scale).
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// 3-qubit Grover searching for `marked` (0..7) with `iterations` rounds.
Circuit make_grover3(std::uint64_t marked, unsigned iterations = 2);

}  // namespace rqsim
