// Grover search: phase oracle marking one basis state plus the standard
// diffusion operator, iterated. make_grover3 is the paper's 3-qubit
// benchmark scale (2 iterations are optimal for 8 entries); make_grover
// generalizes to wider registers for the 20–28 qubit parallel sweep, with
// the multi-controlled phase flip lowered to a Toffoli AND-chain over
// clean ancillas.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// 3-qubit Grover searching for `marked` (0..7) with `iterations` rounds.
Circuit make_grover3(std::uint64_t marked, unsigned iterations = 2);

/// Grover over d = (num_qubits + 2) / 2 data qubits searching for `marked`
/// (< 2^d), with the remaining d - 2 qubits as clean ancillas holding the
/// oracle's Toffoli AND-chain. `num_qubits` must be even and >= 4 (n = 20
/// gives d = 11, n = 24 gives d = 13). All qubits are measured; the
/// ancillas are uncomputed to |0⟩ before each measurement.
Circuit make_grover(unsigned num_qubits, std::uint64_t marked,
                    unsigned iterations = 1);

}  // namespace rqsim
