#include "bench_circuits/qv.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rqsim {

namespace {

void add_random_u3(Circuit& c, qubit_t q, Rng& rng) {
  c.u3(q, rng.uniform(0.0, 2.0 * kPi), rng.uniform(0.0, 2.0 * kPi),
       rng.uniform(0.0, 2.0 * kPi));
}

// Generic two-qubit block: the 3-CX universal template.
void add_su4_block(Circuit& c, qubit_t a, qubit_t b, Rng& rng) {
  add_random_u3(c, a, rng);
  add_random_u3(c, b, rng);
  c.cx(b, a);
  c.rz(a, rng.uniform(0.0, 2.0 * kPi));
  c.ry(b, rng.uniform(0.0, 2.0 * kPi));
  c.cx(a, b);
  c.ry(b, rng.uniform(0.0, 2.0 * kPi));
  c.cx(b, a);
  add_random_u3(c, a, rng);
  add_random_u3(c, b, rng);
}

}  // namespace

Circuit make_qv(unsigned num_qubits, unsigned depth, std::uint64_t seed) {
  RQSIM_CHECK(num_qubits >= 2, "make_qv: need at least two qubits");
  Circuit c(num_qubits,
            "qv_n" + std::to_string(num_qubits) + "d" + std::to_string(depth));
  Rng rng(seed);
  std::vector<qubit_t> perm(num_qubits);
  std::iota(perm.begin(), perm.end(), 0);
  for (unsigned layer = 0; layer < depth; ++layer) {
    std::shuffle(perm.begin(), perm.end(), rng);
    for (unsigned pair = 0; pair + 1 < num_qubits; pair += 2) {
      add_su4_block(c, perm[pair], perm[pair + 1], rng);
    }
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
