#include "bench_circuits/suite.hpp"

#include "bench_circuits/bv.hpp"
#include "bench_circuits/grover.hpp"
#include "bench_circuits/mod15.hpp"
#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "bench_circuits/rb.hpp"
#include "bench_circuits/wstate.hpp"
#include "transpile/transpiler.hpp"

namespace rqsim {

std::vector<BenchmarkEntry> make_table1_suite(const DeviceModel& device) {
  struct Spec {
    Circuit circuit;
    std::size_t qubits, single, cnot, measure;
  };
  // Paper Table I reference counts (post-Enfield) alongside our circuits.
  const Spec specs[] = {
      {make_rb(2, 4, /*seed=*/7), 2, 9, 2, 2},
      {make_grover3(/*marked=*/5, /*iterations=*/2), 3, 87, 25, 3},
      {make_wstate3(), 3, 21, 9, 3},
      {make_7x_mod15(1), 4, 17, 9, 4},
      {make_bv(3, 0b101), 4, 8, 3, 3},
      {make_bv(4, 0b1101), 5, 10, 4, 4},
      {make_qft(4), 4, 42, 15, 4},
      {make_qft(5), 5, 83, 26, 5},
      {make_qv(5, 2, /*seed=*/11), 5, 44, 12, 5},
      {make_qv(5, 3, /*seed=*/12), 5, 74, 21, 5},
      {make_qv(5, 4, /*seed=*/13), 5, 100, 30, 5},
      {make_qv(5, 5, /*seed=*/14), 5, 130, 36, 5},
  };
  const char* names[] = {"rb",   "grover", "wstate",  "7x1mod15", "bv4",     "bv5",
                         "qft4", "qft5",   "qv_n5d2", "qv_n5d3",  "qv_n5d4", "qv_n5d5"};

  std::vector<BenchmarkEntry> out;
  std::size_t i = 0;
  for (const Spec& spec : specs) {
    BenchmarkEntry entry;
    entry.name = names[i++];
    entry.logical = spec.circuit;
    entry.logical.set_name(entry.name);
    TranspileResult compiled = transpile(spec.circuit, device.coupling);
    entry.compiled = std::move(compiled.circuit);
    entry.compiled.set_name(entry.name);
    entry.paper_qubits = spec.qubits;
    entry.paper_single = spec.single;
    entry.paper_cnot = spec.cnot;
    entry.paper_measure = spec.measure;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace rqsim
