#include "bench_circuits/ghz.hpp"

#include "common/error.hpp"

namespace rqsim {

Circuit make_ghz(unsigned num_qubits) {
  RQSIM_CHECK(num_qubits >= 2, "make_ghz: need at least two qubits");
  Circuit c(num_qubits, "ghz" + std::to_string(num_qubits));
  c.h(0);
  for (qubit_t q = 0; q + 1 < num_qubits; ++q) {
    c.cx(q, q + 1);
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
