#include "bench_circuits/wstate.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rqsim {

namespace {

// Controlled-Ry(theta) on `target` with `control`, decomposed into the real
// rotation sandwich ry(θ/2)·CX·ry(−θ/2)·CX.
void add_cry(Circuit& c, qubit_t control, qubit_t target, double theta) {
  c.ry(target, theta / 2.0);
  c.cx(control, target);
  c.ry(target, -theta / 2.0);
  c.cx(control, target);
}

}  // namespace

Circuit make_wstate3() {
  Circuit c(3, "wstate");
  // Qiskit-textbook construction:
  //   ry(θ) q0 with cos(θ/2) = 1/√3        -> √(1/3)|0⟩ + √(2/3)|1⟩
  //   controlled-Ry(π/2) (≡ CH on a |0⟩ target) q0 -> q1
  //   cx q1 -> q2 ; cx q0 -> q1 ; x q0
  // yields (|001⟩ + |010⟩ + |100⟩)/√3.
  const double theta = 2.0 * std::acos(1.0 / std::sqrt(3.0));
  c.ry(0, theta);
  add_cry(c, 0, 1, kPi / 2.0);
  c.cx(1, 2);
  c.cx(0, 1);
  c.x(0);
  c.measure_all();
  return c;
}

}  // namespace rqsim
