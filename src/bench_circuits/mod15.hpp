// Modular multiplication 7·x mod 15 on a 4-qubit register (the "7x1mod15"
// benchmark): the permutation y -> 7y mod 15 realized with three SWAPs and
// a layer of X gates, applied to the input |x⟩.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// Prepare |x⟩, apply the ×7 (mod 15) permutation, measure. x in [0, 16).
Circuit make_7x_mod15(std::uint64_t x = 1);

}  // namespace rqsim
