// GHZ state preparation: (|0…0⟩ + |1…1⟩)/√2 via H + CX chain — the
// standard entanglement witness workload for noisy-device studies.
#pragma once

#include "circuit/circuit.hpp"

namespace rqsim {

Circuit make_ghz(unsigned num_qubits);

}  // namespace rqsim
