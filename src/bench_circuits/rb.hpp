// Randomized-benchmarking-style sequence: a random word over the Clifford
// generators {H, S, CX} followed by its inverse, so the net operation is
// the identity (a noiseless run must return |0…0⟩ with certainty).
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// `length` random generators + their inverses on `num_qubits` qubits.
Circuit make_rb(unsigned num_qubits, unsigned length, std::uint64_t seed);

}  // namespace rqsim
