#include "bench_circuits/adder.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

// Layout (Cuccaro et al. 2004): ancilla at 0, then interleaved b_i, a_i
// pairs, carry-out on top: [anc, b0, a0, b1, a1, …, b_{n-1}, a_{n-1}, cout].
qubit_t adder_b_qubit(unsigned i) { return 1 + 2 * i; }
qubit_t adder_a_qubit(unsigned i) { return 2 + 2 * i; }
qubit_t adder_carry_qubit(unsigned bits) { return 1 + 2 * bits; }

namespace {

void maj(Circuit& c, qubit_t x, qubit_t y, qubit_t z) {
  c.cx(z, y);
  c.cx(z, x);
  c.ccx(x, y, z);
}

void uma(Circuit& c, qubit_t x, qubit_t y, qubit_t z) {
  c.ccx(x, y, z);
  c.cx(z, x);
  c.cx(x, y);
}

}  // namespace

Circuit make_cuccaro_adder(unsigned bits, std::uint64_t a, std::uint64_t b) {
  RQSIM_CHECK(bits >= 1 && bits <= 8, "make_cuccaro_adder: bits must be in [1, 8]");
  RQSIM_CHECK(a < pow2(bits) && b < pow2(bits), "make_cuccaro_adder: inputs too wide");
  const unsigned num_qubits = 2 * bits + 2;
  Circuit c(num_qubits, "cuccaro" + std::to_string(bits));

  for (unsigned i = 0; i < bits; ++i) {
    if (get_bit(a, i)) {
      c.x(adder_a_qubit(i));
    }
    if (get_bit(b, i)) {
      c.x(adder_b_qubit(i));
    }
  }

  // Forward MAJ ladder.
  maj(c, 0, adder_b_qubit(0), adder_a_qubit(0));
  for (unsigned i = 1; i < bits; ++i) {
    maj(c, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i));
  }
  // Carry out.
  c.cx(adder_a_qubit(bits - 1), adder_carry_qubit(bits));
  // Backward UMA ladder.
  for (unsigned i = bits; i-- > 1;) {
    uma(c, adder_a_qubit(i - 1), adder_b_qubit(i), adder_a_qubit(i));
  }
  uma(c, 0, adder_b_qubit(0), adder_a_qubit(0));

  // Measure the sum: b register then carry (bit `bits`).
  for (unsigned i = 0; i < bits; ++i) {
    c.measure(adder_b_qubit(i));
  }
  c.measure(adder_carry_qubit(bits));
  return c;
}

}  // namespace rqsim
