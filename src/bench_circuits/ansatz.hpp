// Hardware-efficient variational ansatz (the VQE workload family the
// paper's introduction motivates via molecule simulation): alternating
// layers of parameterized single-qubit rotations and a CX entangler chain.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"

namespace rqsim {

/// `parameters` must hold 2 * num_qubits * layers angles (ry, rz per qubit
/// per layer). No terminal measurement is added: VQE estimates Pauli
/// observables on the final state instead of sampling bitstrings.
Circuit make_hw_efficient_ansatz(unsigned num_qubits, unsigned layers,
                                 const std::vector<double>& parameters);

/// Number of parameters the ansatz consumes.
std::size_t ansatz_num_parameters(unsigned num_qubits, unsigned layers);

}  // namespace rqsim
