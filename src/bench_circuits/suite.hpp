// The Table I benchmark suite: the 12 programs of the paper's realistic
// experiments, each compiled onto the IBM Yorktown device.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "noise/devices.hpp"

namespace rqsim {

struct BenchmarkEntry {
  std::string name;
  Circuit logical;   // algorithm-level circuit
  Circuit compiled;  // transpiled onto the Yorktown coupling map

  /// Paper's Table I post-Enfield gate counts, for side-by-side reporting.
  std::size_t paper_qubits = 0;
  std::size_t paper_single = 0;
  std::size_t paper_cnot = 0;
  std::size_t paper_measure = 0;
};

/// Build all 12 Table I benchmarks compiled to `device` (defaults used by
/// callers: yorktown_device()). Deterministic (fixed internal seeds).
std::vector<BenchmarkEntry> make_table1_suite(const DeviceModel& device);

}  // namespace rqsim
