// Quantum-volume-style random circuits (IBM's benchmark family): `depth`
// layers, each pairing the qubits under a fresh random permutation and
// applying a generic two-qubit block (3 CX + 7 parameterized single-qubit
// gates — the universal KAK template shape) to every pair.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

Circuit make_qv(unsigned num_qubits, unsigned depth, std::uint64_t seed);

}  // namespace rqsim
