// Quantum Fourier Transform on n qubits: H + controlled-phase ladder +
// terminal SWAP reversal (Nielsen & Chuang Fig. 5.1).
#pragma once

#include "circuit/circuit.hpp"

namespace rqsim {

/// QFT circuit; with `with_swaps` the terminal bit-reversal SWAPs are
/// emitted (the convention the paper's qft4/qft5 gate counts imply).
Circuit make_qft(unsigned num_qubits, bool with_swaps = true);

}  // namespace rqsim
