#include "bench_circuits/bv.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

Circuit make_bv(unsigned num_data_qubits, std::uint64_t secret) {
  RQSIM_CHECK(num_data_qubits >= 1 && num_data_qubits <= 62, "make_bv: bad size");
  RQSIM_CHECK(secret < pow2(num_data_qubits), "make_bv: secret out of range");
  Circuit c(num_data_qubits + 1, "bv" + std::to_string(num_data_qubits + 1));
  const qubit_t ancilla = num_data_qubits;
  // Prepare the ancilla in |−⟩.
  c.x(ancilla);
  c.h(ancilla);
  for (qubit_t q = 0; q < num_data_qubits; ++q) {
    c.h(q);
  }
  for (qubit_t q = 0; q < num_data_qubits; ++q) {
    if (get_bit(secret, q)) {
      c.cx(q, ancilla);
    }
  }
  for (qubit_t q = 0; q < num_data_qubits; ++q) {
    c.h(q);
  }
  for (qubit_t q = 0; q < num_data_qubits; ++q) {
    c.measure(q);
  }
  return c;
}

}  // namespace rqsim
