// W-state preparation: (|100⟩ + |010⟩ + |001⟩) / sqrt(3) on 3 qubits,
// built from the cascade of controlled rotations used in the teleportation
// benchmark the paper cites.
#pragma once

#include "circuit/circuit.hpp"

namespace rqsim {

Circuit make_wstate3();

}  // namespace rqsim
