#include "bench_circuits/rb.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rqsim {

Circuit make_rb(unsigned num_qubits, unsigned length, std::uint64_t seed) {
  RQSIM_CHECK(num_qubits >= 2, "make_rb: need at least two qubits");
  Circuit c(num_qubits, "rb");
  Rng rng(seed);
  std::vector<Gate> word;
  word.reserve(length);
  for (unsigned i = 0; i < length; ++i) {
    // Generators: H(q), S(q), CX(a, b).
    const std::uint64_t pick = rng.uniform_int(3);
    if (pick == 0) {
      word.push_back(Gate::make1(GateKind::H,
                                 static_cast<qubit_t>(rng.uniform_int(num_qubits))));
    } else if (pick == 1) {
      word.push_back(Gate::make1(GateKind::S,
                                 static_cast<qubit_t>(rng.uniform_int(num_qubits))));
    } else {
      const auto a = static_cast<qubit_t>(rng.uniform_int(num_qubits));
      auto b = static_cast<qubit_t>(rng.uniform_int(num_qubits - 1));
      if (b >= a) {
        ++b;
      }
      word.push_back(Gate::make2(GateKind::CX, a, b));
    }
  }
  for (const Gate& g : word) {
    c.add(g);
  }
  // Inverse word: reverse order, S -> Sdg, H and CX self-inverse.
  for (auto it = word.rbegin(); it != word.rend(); ++it) {
    Gate inv = *it;
    if (inv.kind == GateKind::S) {
      inv.kind = GateKind::Sdg;
    }
    c.add(inv);
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
