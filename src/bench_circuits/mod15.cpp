#include "bench_circuits/mod15.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

Circuit make_7x_mod15(std::uint64_t x) {
  RQSIM_CHECK(x < 16, "make_7x_mod15: x must fit in 4 bits");
  Circuit c(4, "7x1mod15");
  // Prepare |x⟩.
  for (qubit_t q = 0; q < 4; ++q) {
    if (get_bit(x, q)) {
      c.x(q);
    }
  }
  // Multiplication by 7 mod 15: since 7 ≡ 8·14 (mod 15), ×7 is ×8 (a cyclic
  // bit rotation, realized by a swap cascade) followed by ×14 ≡ −1 (the
  // 4-bit complement, realized by X on every qubit).
  c.swap(0, 1);
  c.swap(1, 2);
  c.swap(2, 3);
  for (qubit_t q = 0; q < 4; ++q) {
    c.x(q);
  }
  c.measure_all();
  return c;
}

}  // namespace rqsim
