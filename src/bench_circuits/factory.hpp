// Named circuit factory: build any benchmark from a textual spec, e.g.
// "qft:5", "qv:10:5", "ghz:4", "bv:4:5", "adder:3:2:3", "grover",
// "wstate", "rb", "7x1mod15" — plus the Table I shorthand names ("qft5",
// "bv4", "qv_n5d3", …). Used by the CLI and handy for scripting sweeps.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace rqsim {

/// Build a circuit from its spec. Throws rqsim::Error on unknown names or
/// malformed parameters.
Circuit make_named_circuit(const std::string& spec);

/// All supported spec forms, for help text.
std::vector<std::string> named_circuit_help();

}  // namespace rqsim
