#include "bench_circuits/factory.hpp"

#include <cstdlib>

#include "bench_circuits/adder.hpp"
#include "bench_circuits/bv.hpp"
#include "bench_circuits/ghz.hpp"
#include "bench_circuits/grover.hpp"
#include "bench_circuits/mod15.hpp"
#include "bench_circuits/qft.hpp"
#include "bench_circuits/qv.hpp"
#include "bench_circuits/rb.hpp"
#include "bench_circuits/wstate.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace rqsim {

namespace {

std::uint64_t parse_u64(const std::string& text, const std::string& spec) {
  RQSIM_CHECK(!text.empty(), "make_named_circuit: empty parameter in '" + spec + "'");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  RQSIM_CHECK(end != nullptr && *end == '\0',
              "make_named_circuit: bad number '" + text + "' in '" + spec + "'");
  return value;
}

}  // namespace

Circuit make_named_circuit(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  const std::string& name = parts[0];
  const std::size_t argc = parts.size() - 1;
  auto arg = [&](std::size_t i, std::uint64_t fallback) {
    return argc > i ? parse_u64(parts[i + 1], spec) : fallback;
  };

  if (name == "qft") {
    return make_qft(static_cast<unsigned>(arg(0, 4)));
  }
  if (name == "ghz") {
    return make_ghz(static_cast<unsigned>(arg(0, 3)));
  }
  if (name == "qv") {
    return make_qv(static_cast<unsigned>(arg(0, 5)), static_cast<unsigned>(arg(1, 5)),
                   arg(2, 11));
  }
  if (name == "bv") {
    const auto data_bits = static_cast<unsigned>(arg(0, 3));
    const std::uint64_t default_secret = (1ULL << data_bits) - 1;
    return make_bv(data_bits, arg(1, default_secret));
  }
  if (name == "adder") {
    return make_cuccaro_adder(static_cast<unsigned>(arg(0, 2)), arg(1, 1), arg(2, 2));
  }
  if (name == "grover") {
    return make_grover3(arg(0, 5), static_cast<unsigned>(arg(1, 2)));
  }
  if (name == "rb") {
    return make_rb(static_cast<unsigned>(arg(0, 2)), static_cast<unsigned>(arg(1, 4)),
                   arg(2, 7));
  }
  if (name == "wstate") {
    return make_wstate3();
  }
  if (name == "7x1mod15" || name == "mod15") {
    return make_7x_mod15(arg(0, 1));
  }
  // Table I shorthands.
  if (name == "bv4") {
    return make_bv(3, 0b101);
  }
  if (name == "bv5") {
    return make_bv(4, 0b1101);
  }
  if (name == "qft4") {
    return make_qft(4);
  }
  if (name == "qft5") {
    return make_qft(5);
  }
  if (starts_with(name, "qv_n5d") && name.size() == 7) {
    const unsigned depth = static_cast<unsigned>(name[6] - '0');
    RQSIM_CHECK(depth >= 1 && depth <= 9, "make_named_circuit: bad qv depth in " + name);
    return make_qv(5, depth, 10 + depth);
  }
  RQSIM_CHECK(false, "make_named_circuit: unknown circuit '" + spec + "'");
  return Circuit();
}

std::vector<std::string> named_circuit_help() {
  return {
      "qft:<n>                  quantum Fourier transform",
      "ghz:<n>                  GHZ state preparation",
      "qv:<n>:<depth>[:seed]    quantum-volume random circuit",
      "bv:<data_bits>[:secret]  Bernstein-Vazirani (+1 ancilla qubit)",
      "adder:<bits>[:a[:b]]     Cuccaro ripple-carry adder",
      "grover[:marked[:iters]]  3-qubit Grover search",
      "rb[:n[:len[:seed]]]      randomized-benchmarking identity sequence",
      "wstate                   3-qubit W state",
      "7x1mod15[:x]             modular multiplication by 7 mod 15",
      "rb grover wstate 7x1mod15 bv4 bv5 qft4 qft5 qv_n5d2..qv_n5d5 (Table I names)",
  };
}

}  // namespace rqsim
