#include "bench_circuits/ansatz.hpp"

#include "common/error.hpp"

namespace rqsim {

std::size_t ansatz_num_parameters(unsigned num_qubits, unsigned layers) {
  return static_cast<std::size_t>(2) * num_qubits * layers;
}

Circuit make_hw_efficient_ansatz(unsigned num_qubits, unsigned layers,
                                 const std::vector<double>& parameters) {
  RQSIM_CHECK(num_qubits >= 2, "make_hw_efficient_ansatz: need at least two qubits");
  RQSIM_CHECK(parameters.size() == ansatz_num_parameters(num_qubits, layers),
              "make_hw_efficient_ansatz: wrong parameter count");
  Circuit c(num_qubits, "hwe_ansatz");
  std::size_t next = 0;
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (qubit_t q = 0; q < num_qubits; ++q) {
      c.ry(q, parameters[next++]);
      c.rz(q, parameters[next++]);
    }
    for (qubit_t q = 0; q + 1 < num_qubits; ++q) {
      c.cx(q, q + 1);
    }
  }
  return c;
}

}  // namespace rqsim
