// Cuccaro ripple-carry adder: |a⟩|b⟩ -> |a⟩|a+b⟩ with one ancilla and one
// carry-out qubit, built from MAJ/UMA blocks (CX + CCX). An arithmetic
// workload with deep CCX chains — a stress test for the transpiler and a
// deterministic oracle for end-to-end correctness.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"

namespace rqsim {

/// Adder over two `bits`-wide registers. Layout: qubit 0 = ancilla (carry
/// in), qubits 1..bits = register b (least-significant first, interleaved
/// as b_i at 1+2i... see implementation), top qubit = carry out. Inputs
/// `a` and `b` are prepared with X gates; the sum (with carry) is measured.
Circuit make_cuccaro_adder(unsigned bits, std::uint64_t a, std::uint64_t b);

/// Qubit index helpers used by the construction and its tests.
qubit_t adder_b_qubit(unsigned i);
qubit_t adder_a_qubit(unsigned i);
qubit_t adder_carry_qubit(unsigned bits);

}  // namespace rqsim
