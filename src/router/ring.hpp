// Consistent-hash ring for workload-affinity sharding.
//
// The fleet router's core job is arranging that *compatible* jobs — same
// circuit, same noise model, same trial-compatible config — land on the
// same backend process, no matter which tenant submitted them, so the
// backend's cross-job batch planner (service/batch.hpp) can merge them into
// one prefix-cached schedule. A consistent-hash ring gives that affinity a
// stable, coordination-free form: each backend owns `vnodes` pseudo-random
// points on a 64-bit ring, and a workload key is served by the first
// backend point at or clockwise after the key's hash. Adding or removing
// one backend moves only the keys in the arcs it owned (~1/N of the
// keyspace), so a backend ejection re-routes the minimum amount of
// workload-affinity state.
//
// The ring is deliberately dumb about liveness: it always contains every
// *configured* backend so ownership never flaps with health. Liveness is a
// filter applied at lookup time — preference() returns backends in ring
// order from the key's owner and the router walks it until it finds one
// that is healthy and not draining (router/health.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace rqsim {

/// FNV-1a over bytes, finalized with a splitmix64-style mix so clustered
/// inputs (backend names differing in one digit) spread over the ring.
std::uint64_t stable_hash64(const std::string& bytes);

/// Canonical workload-affinity key of a submit request: hashes exactly the
/// fields that must match for two jobs to be batch-compatible on a backend
/// (the workload description plus mode / max_states / fuse / analyze /
/// multi-threadedness — the spec-level mirror of batch_fingerprint), and
/// none of the fields that vary freely within a merged batch (seed, trials,
/// priority, tenant). Two submits with equal keys from different tenants
/// therefore route to the same backend and can merge there.
std::uint64_t workload_affinity_key(const Json& submit_request);

class HashRing {
 public:
  /// `vnodes` points per backend; more points = smoother key distribution
  /// at O(vnodes · backends) ring size.
  explicit HashRing(std::size_t vnodes = 64);

  void add(const std::string& backend);
  void remove(const std::string& backend);
  bool contains(const std::string& backend) const;
  std::size_t size() const { return backends_.size(); }

  /// Owning backend of a key (first point clockwise); empty if the ring is
  /// empty.
  std::string owner(std::uint64_t key) const;

  /// Up to `count` distinct backends in ring order starting at the key's
  /// owner — the failover preference list: if the owner is unroutable, the
  /// next entry inherits the key's workload deterministically.
  std::vector<std::string> preference(std::uint64_t key, std::size_t count) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // point -> backend
  std::set<std::string> backends_;
};

}  // namespace rqsim
