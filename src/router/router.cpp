#include "router/router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/error.hpp"
#include "common/version.hpp"
#include "router/ring.hpp"
#include "service/protocol.hpp"
#include "service/socket_util.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace rqsim {

namespace {

Json error_response(const std::string& code, const std::string& detail) {
  Json response = Json::object();
  response.set("ok", Json(false));
  response.set("error", Json(code));
  response.set("detail", Json(detail));
  return response;
}

bool is_terminal_state(const std::string& state) {
  return state == "done" || state == "failed" || state == "cancelled";
}

/// Service-counter fields of a backend stats body that sum across the fleet
/// (everything in the body — they are all monotonic counters or additive
/// point-in-time gauges).
constexpr const char* kSummedStatsFields[] = {
    "submitted",       "rejected",
    "completed",       "failed",
    "cancelled",       "merged_batches",
    "merged_jobs",     "merged_batch_ops",
    "merged_solo_ops", "merged_cross_tenant_batches",
    "merged_cross_tenant_jobs",
    "queued_now",      "running_now",
};

}  // namespace

FleetRouter::FleetRouter(RouterConfig config)
    : config_(std::move(config)),
      pool_(config_.backends, config_.health, config_.ring_vnodes),
      admission_(config_.admission) {
  int listen_fd = -1;
  if (!config_.unix_path.empty()) {
    listen_fd = listen_unix(config_.unix_path);
  } else {
    listen_fd = listen_tcp(config_.tcp_port, tcp_port_);
  }
  listen_fd_.store(listen_fd);
  if (config_.health_thread) {
    pool_.start_health_checks();
  }
}

FleetRouter::~FleetRouter() {
  stop();
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

std::string FleetRouter::endpoint() const {
  if (!config_.unix_path.empty()) {
    return "unix:" + config_.unix_path;
  }
  return "tcp:127.0.0.1:" + std::to_string(tcp_port_);
}

void FleetRouter::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  stop();
}

void FleetRouter::handle_connection(int fd) {
  std::string buffer;
  std::string line;
  while (!stopping_.load()) {
    const ReadLineStatus status = read_line_bounded(fd, buffer, line, kMaxLineBytes);
    if (status == ReadLineStatus::kEof || status == ReadLineStatus::kError ||
        status == ReadLineStatus::kTimeout) {
      break;
    }
    std::string response;
    if (status == ReadLineStatus::kOversized) {
      response = oversized_line_error().dump();
    } else {
      if (line.empty()) {
        continue;
      }
      try {
        response = handle(Json::parse(line)).dump();
      } catch (const Error& e) {
        response = error_response("bad_request", e.what()).dump();
      }
    }
    response.push_back('\n');
    try {
      write_all(fd, response);
    } catch (const Error&) {
      break;  // peer went away mid-response
    }
    if (stopping_.load()) {
      const int listen_fd = listen_fd_.load();
      if (listen_fd >= 0) {
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
    if (*it == fd) {
      open_fds_.erase(it);
      break;
    }
  }
}

void FleetRouter::stop() {
  stopping_.store(true);
  pool_.stop_health_checks();
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable() && t.get_id() != std::this_thread::get_id()) {
      t.join();
    } else if (t.joinable()) {
      t.detach();  // a connection thread triggered the shutdown itself
    }
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
}

Json FleetRouter::handle(const Json& request) {
  try {
    if (!request.is_object()) {
      return error_response("bad_request", "request must be a JSON object");
    }
    const std::string op = request.get_string("op", "");
    if (op == "ping") {
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("pong", Json(true));
      response.set("router", Json(true));
      response.set("clock_us", Json(telemetry::now_ns() / 1000));
      return response;
    }
    if (op == "submit") {
      return handle_submit(request);
    }
    if (op == "status" || op == "wait" || op == "cancel") {
      return handle_job_op(request, op);
    }
    if (op == "stats") {
      return handle_stats();
    }
    if (op == "trace") {
      return handle_trace(request);
    }
    if (op == "drain") {
      return handle_drain(request, /*draining=*/true);
    }
    if (op == "undrain") {
      return handle_drain(request, /*draining=*/false);
    }
    if (op == "shutdown") {
      // Stops the router only; backends have their own lifecycles and keep
      // serving directly-connected clients.
      stopping_.store(true);
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("stopping", Json(true));
      return response;
    }
    return error_response("bad_request", "unknown op '" + op + "'");
  } catch (const Error& e) {
    return error_response("bad_request", e.what());
  }
}

Json FleetRouter::handle_submit(const Json& request) {
  // Admission is where a job's fleet journey begins, so the trace id is
  // minted here (unless the client brought one) and every hop after this —
  // the forwarded submit, the backend's queue wait, batch planning, tree
  // execution — carries the same id.
  std::uint64_t trace_id =
      telemetry::trace_id_from_hex(request.get_string("trace_id", ""));
  if (trace_id == 0) {
    trace_id = telemetry::mint_trace_id();
  }
  telemetry::TraceContext trace_ctx(trace_id);
  RQSIM_SPAN("router.admit");
  Json traced_request = request;
  traced_request.set("trace_id", Json(telemetry::trace_id_to_hex(trace_id)));

  const std::string tenant = request.get_string("tenant", "");
  const AdmissionDecision decision = admission_.try_admit(tenant);
  if (!decision.admitted) {
    ++rejected_quota_total_;
    Json response = error_response("quota_exceeded", decision.reason);
    response.set("retry_after_ms", Json(decision.retry_after_ms));
    return response;
  }

  const std::uint64_t key = workload_affinity_key(request);
  const std::vector<std::string> preference = pool_.route_preference(key);
  if (preference.empty()) {
    admission_.release(tenant);
    ++rejected_no_backend_total_;
    Json response =
        error_response("no_backend", "no healthy, non-draining backend available");
    response.set("retry_after_ms",
                 Json(static_cast<double>(config_.health.interval_ms)));
    return response;
  }

  for (const std::string& backend : preference) {
    Json response;
    try {
      ServiceClient client =
          ServiceClient::connect(backend, config_.backend_client);
      response = client.request(traced_request);
    } catch (const Error&) {
      pool_.report_failure(backend);
      continue;  // next backend in ring preference inherits the key
    }
    pool_.report_success(backend);
    if (!response.get_bool("ok", false)) {
      // Application-level rejection (queue_full, invalid spec): the fleet's
      // answer, not a transport failure. Forwarded as-is so the caller
      // retries against the same affinity; queue_full gains a backoff hint.
      admission_.release(tenant);
      if (response.get_string("error", "") == "queue_full") {
        response.set("retry_after_ms", Json(config_.admission.retry_after_base_ms));
      }
      return response;
    }
    const std::uint64_t backend_job = response.get_u64("job", 0);
    std::uint64_t router_job = 0;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      router_job = next_job_id_++;
      RoutedJob job;
      job.backend = backend;
      job.backend_job = backend_job;
      job.key = key;
      job.tenant = tenant;
      // Failover resubmits reuse the traced form, so a re-homed job keeps
      // its original trace id.
      job.submit_request = traced_request;
      jobs_.emplace(router_job, std::move(job));
    }
    pool_.note_routed(backend);
    ++routed_total_;
    response.set("job", Json(router_job));
    response.set("backend", Json(backend));
    return response;
  }

  admission_.release(tenant);
  ++rejected_no_backend_total_;
  Json response =
      error_response("no_backend", "all routable backends failed during submit");
  response.set("retry_after_ms",
               Json(static_cast<double>(config_.health.interval_ms)));
  return response;
}

Json FleetRouter::handle_job_op(const Json& request, const std::string& op) {
  if (!request.has("job")) {
    return error_response("bad_request", op + " requires a \"job\" id");
  }
  const std::uint64_t router_job = request.at("job").as_u64();
  // Each failed attempt either heals the job onto another backend or gives
  // up with no_backend, so the loop is bounded by the fleet size (+1 for a
  // concurrent heal racing the first attempt).
  const std::size_t max_attempts = config_.backends.size() + 2;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::string backend;
    std::uint64_t backend_job = 0;
    std::uint64_t generation = 0;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      const auto it = jobs_.find(router_job);
      if (it == jobs_.end()) {
        return error_response("unknown_job",
                              "no job with id " + std::to_string(router_job));
      }
      const RoutedJob& job = it->second;
      if (job.has_terminal && op != "cancel") {
        return job.terminal_response;
      }
      if (job.finished && op == "cancel") {
        Json response = Json::object();
        response.set("ok", Json(true));
        response.set("job", Json(router_job));
        response.set("cancelled", Json(false));
        return response;
      }
      backend = job.backend;
      backend_job = job.backend_job;
      generation = job.generation;
    }

    Json forwarded = request;
    forwarded.set("job", Json(backend_job));
    Json response;
    try {
      ServiceClient client =
          ServiceClient::connect(backend, config_.backend_client);
      response = client.request(forwarded);
    } catch (const Error&) {
      pool_.report_failure(backend);
      if (!failover(router_job, generation)) {
        return error_response(
            "no_backend", "backend '" + backend +
                              "' failed and the job could not be re-routed");
      }
      continue;
    }
    pool_.report_success(backend);
    response.set("job", Json(router_job));

    if (op == "cancel") {
      if (response.get_bool("cancelled", false)) {
        // Fetch and cache the terminal status now so later status/wait
        // calls need not reach (or outlive) the backend.
        try {
          ServiceClient client =
              ServiceClient::connect(backend, config_.backend_client);
          Json status_request = Json::object();
          status_request.set("op", Json(std::string("status")));
          status_request.set("job", Json(backend_job));
          Json status = client.request(status_request);
          status.set("job", Json(router_job));
          if (is_terminal_state(status.get_string("state", ""))) {
            finish_job(router_job, &status);
          } else {
            finish_job(router_job, nullptr);
          }
        } catch (const Error&) {
          finish_job(router_job, nullptr);
        }
      }
      return response;
    }

    if (response.get_bool("ok", false) &&
        is_terminal_state(response.get_string("state", ""))) {
      finish_job(router_job, &response);
    }
    return response;
  }
  return error_response("no_backend",
                        "job unreachable after repeated backend failures");
}

bool FleetRouter::failover(std::uint64_t router_job, std::uint64_t failed_generation) {
  // One resubmission at a time fleet-wide: concurrent ops that saw the same
  // failure line up here, and all but the first find the generation already
  // bumped and simply retry.
  std::lock_guard<std::mutex> failover_lock(failover_mu_);

  std::string old_backend;
  std::uint64_t key = 0;
  Json submit_request;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(router_job);
    if (it == jobs_.end()) {
      return false;
    }
    const RoutedJob& job = it->second;
    if (job.finished || job.has_terminal) {
      // Already terminal through another path: a finished job is never
      // resubmitted (that would duplicate completed work).
      return false;
    }
    if (job.generation != failed_generation) {
      return true;  // another thread already re-homed it; caller retries
    }
    old_backend = job.backend;
    key = job.key;
    submit_request = job.submit_request;
  }

  std::vector<std::string> candidates = pool_.route_preference(key);
  for (const std::string& candidate : candidates) {
    if (candidate == old_backend) {
      continue;
    }
    Json response;
    try {
      ServiceClient client =
          ServiceClient::connect(candidate, config_.backend_client);
      // rqsim-analyze: allow(RQS102) failover_mu_ deliberately serializes resubmissions fleet-wide, network round-trip included (see router.hpp)
      response = client.request(submit_request);
    } catch (const Error&) {
      pool_.report_failure(candidate);
      continue;
    }
    pool_.report_success(candidate);
    if (!response.get_bool("ok", false)) {
      continue;  // e.g. queue_full on the fallback; try the next one
    }
    const std::uint64_t new_backend_job = response.get_u64("job", 0);
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      const auto it = jobs_.find(router_job);
      if (it == jobs_.end()) {
        return false;
      }
      RoutedJob& job = it->second;
      job.backend = candidate;
      job.backend_job = new_backend_job;
      ++job.generation;
    }
    pool_.note_rerouted(old_backend);
    pool_.note_routed(candidate);
    ++resubmits_total_;
    return true;
  }
  return false;
}

void FleetRouter::finish_job(std::uint64_t router_job, const Json* terminal_response) {
  std::string backend;
  std::string tenant;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    const auto it = jobs_.find(router_job);
    if (it == jobs_.end()) {
      return;
    }
    RoutedJob& job = it->second;
    if (terminal_response != nullptr) {
      job.terminal_response = *terminal_response;
      job.has_terminal = true;
    }
    if (job.finished) {
      return;  // accounting already done (finish is exactly-once)
    }
    job.finished = true;
    backend = job.backend;
    tenant = job.tenant;
  }
  pool_.note_finished(backend);
  admission_.release(tenant);
}

Json FleetRouter::handle_stats() {
  // Fan out to every configured backend — draining ones included, they
  // still hold jobs. Unreachable backends contribute nothing to the sums
  // but still appear in the fleet block with reachable=false.
  Json totals = Json::object();
  for (const char* field : kSummedStatsFields) {
    totals.set(field, Json(std::uint64_t{0}));
  }
  telemetry::MetricsSnapshot fleet_metrics;
  telemetry::SloTracker fleet_slo;
  std::map<std::string, Json> backend_responses;

  for (const std::string& endpoint : pool_.endpoints()) {
    Json response;
    try {
      ServiceClient client =
          ServiceClient::connect(endpoint, config_.backend_client);
      Json stats_request = Json::object();
      stats_request.set("op", Json(std::string("stats")));
      response = client.request(stats_request);
    } catch (const Error&) {
      pool_.report_failure(endpoint);
      continue;
    }
    pool_.report_success(endpoint);
    if (!response.get_bool("ok", false) || !response.has("stats")) {
      continue;
    }
    const Json& body = response.at("stats");
    for (const char* field : kSummedStatsFields) {
      totals.set(field, Json(totals.get_u64(field, 0) + body.get_u64(field, 0)));
    }
    if (response.has("telemetry")) {
      telemetry::merge_snapshot(
          fleet_metrics, metrics_snapshot_from_json(response.at("telemetry")));
    }
    // Per-tenant SLO state folds the same way the metrics registry does:
    // raw log2 buckets add, quantiles are recomputed over the merged
    // buckets (a p99 of p99s would be meaningless).
    if (response.has("slo")) {
      fleet_slo.merge(slo_from_json(response.at("slo")));
    }
    backend_responses.emplace(endpoint, std::move(response));
  }

  Json backends = Json::array();
  for (const BackendInfo& info : pool_.snapshot()) {
    Json entry = Json::object();
    entry.set("endpoint", Json(info.endpoint));
    entry.set("state", Json(std::string(backend_state_name(info.state))));
    entry.set("draining", Json(info.draining));
    entry.set("consecutive_failures", Json(std::uint64_t{info.consecutive_failures}));
    entry.set("pings_ok", Json(info.pings_ok));
    entry.set("pings_failed", Json(info.pings_failed));
    entry.set("ejections", Json(info.ejections));
    entry.set("jobs_routed", Json(info.jobs_routed));
    entry.set("jobs_finished", Json(info.jobs_finished));
    entry.set("inflight", Json(static_cast<std::uint64_t>(info.inflight)));
    const auto it = backend_responses.find(info.endpoint);
    entry.set("reachable", Json(it != backend_responses.end()));
    if (it != backend_responses.end()) {
      const Json& body = it->second.at("stats");
      entry.set("queued_now", Json(body.get_u64("queued_now", 0)));
      entry.set("running_now", Json(body.get_u64("running_now", 0)));
      entry.set("completed", Json(body.get_u64("completed", 0)));
      if (it->second.has("build")) {
        const Json& build = it->second.at("build");
        entry.set("version", Json(build.get_string("version", "")));
        entry.set("uptime_ms", Json(build.get_number("uptime_ms", 0.0)));
      }
      // Headline tail latency per backend: the total (all-tenant) e2e p99
      // as this backend reported it.
      if (it->second.has("slo") && it->second.at("slo").has("total")) {
        const Json& total = it->second.at("slo").at("total");
        if (total.has("e2e_us")) {
          entry.set("e2e_p99_us", Json(total.at("e2e_us").get_number("p99", 0.0)));
        }
      }
    }
    backends.push_back(std::move(entry));
  }

  Json tenants = Json::object();
  for (const auto& [name, stats] : admission_.stats()) {
    Json entry = Json::object();
    entry.set("admitted", Json(stats.admitted));
    entry.set("rejected", Json(stats.rejected));
    entry.set("inflight", Json(static_cast<std::uint64_t>(stats.inflight)));
    entry.set("weight", Json(stats.weight));
    tenants.set(name.empty() ? "(anonymous)" : name, std::move(entry));
  }

  Json router = Json::object();
  router.set("jobs_routed", Json(routed_total_.load()));
  router.set("resubmits", Json(resubmits_total_.load()));
  router.set("rejected_quota", Json(rejected_quota_total_.load()));
  router.set("rejected_no_backend", Json(rejected_no_backend_total_.load()));
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    router.set("jobs_tracked", Json(static_cast<std::uint64_t>(jobs_.size())));
  }

  // Headline number: of all jobs the fleet completed, the fraction that ran
  // inside a merged batch spanning more than one tenant — the reuse that
  // only exists because affinity routing co-located the tenants.
  const std::uint64_t completed = totals.get_u64("completed", 0);
  const std::uint64_t cross_jobs = totals.get_u64("merged_cross_tenant_jobs", 0);
  const double hit_rate =
      completed > 0 ? static_cast<double>(cross_jobs) / static_cast<double>(completed)
                    : 0.0;

  Json fleet = Json::object();
  fleet.set("backends", std::move(backends));
  fleet.set("tenants", std::move(tenants));
  fleet.set("router", std::move(router));
  fleet.set("cross_tenant_merge_hit_rate", Json(hit_rate));

  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("stats", std::move(totals));
  response.set("telemetry", metrics_snapshot_to_json(fleet_metrics));
  response.set("slo", slo_to_json(fleet_slo));
  Json build = Json::object();
  build.set("version", Json(kVersion));
  build.set("uptime_ms", Json(telemetry::process_uptime_ms()));
  response.set("build", std::move(build));
  response.set("fleet", std::move(fleet));
  return response;
}

Json FleetRouter::handle_trace(const Json& request) {
  const std::string action = request.get_string("action", "collect");
  if (action != "start" && action != "stop" && action != "collect") {
    return error_response("bad_request", "unknown trace action '" + action +
                                             "' (start | stop | collect)");
  }

  if (action == "start" || action == "stop") {
    if (action == "start") {
      telemetry::start_tracing();
    } else {
      telemetry::stop_tracing();
    }
    Json forward = Json::object();
    forward.set("op", Json(std::string("trace")));
    forward.set("action", Json(action));
    std::uint64_t backends_ok = 0;
    for (const std::string& endpoint : pool_.endpoints()) {
      try {
        ServiceClient client =
            ServiceClient::connect(endpoint, config_.backend_client);
        if (client.request(forward).get_bool("ok", false)) {
          ++backends_ok;
        }
      } catch (const Error&) {
        pool_.report_failure(endpoint);
      }
    }
    Json response = Json::object();
    response.set("ok", Json(true));
    response.set("tracing", Json(action == "start"));
    response.set("backends", Json(backends_ok));
    return response;
  }

  // collect: pull every process's buffers and express each epoch in the
  // router's clock domain so trace-merge can put them on one timeline.
  telemetry::stop_tracing();
  Json processes = Json::array();
  {
    Json own = Json::object();
    own.set("name", Json(std::string("router")));
    own.set("trace", Json::parse(telemetry::trace_to_json()));
    own.set("epoch_us", Json(telemetry::trace_epoch_ns() / 1000));
    own.set("skew_us", Json(0.0));
    processes.push_back(std::move(own));
  }
  Json collect = Json::object();
  collect.set("op", Json(std::string("trace")));
  collect.set("action", Json(std::string("collect")));
  Json ping = Json::object();
  ping.set("op", Json(std::string("ping")));
  for (const std::string& endpoint : pool_.endpoints()) {
    try {
      ServiceClient client =
          ServiceClient::connect(endpoint, config_.backend_client);
      // Clock-offset estimate: the backend's clock sample sits (on average)
      // at the midpoint of the ping round trip on the router's clock, so
      // skew = remote_sample - midpoint. Monotonic clocks of different
      // processes have unrelated epochs; this is what lines them up.
      const double t0 = static_cast<double>(telemetry::now_ns()) / 1000.0;
      const Json pong = client.request(ping);
      const double t1 = static_cast<double>(telemetry::now_ns()) / 1000.0;
      const double remote = pong.get_number("clock_us", 0.0);
      const double skew_us = remote - (t0 + t1) / 2.0;
      Json collected = client.request(collect);
      if (!collected.get_bool("ok", false) || !collected.has("trace")) {
        continue;
      }
      Json entry = Json::object();
      entry.set("name", Json("backend " + endpoint));
      entry.set("trace", collected.at("trace"));
      entry.set("epoch_us",
                Json(collected.get_number("epoch_us", 0.0) - skew_us));
      entry.set("skew_us", Json(skew_us));
      entry.set("dropped_events", Json(collected.get_u64("dropped_events", 0)));
      processes.push_back(std::move(entry));
    } catch (const Error&) {
      pool_.report_failure(endpoint);
    }
  }
  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("tracing", Json(false));
  response.set("processes", std::move(processes));
  return response;
}

Json FleetRouter::handle_drain(const Json& request, bool draining) {
  const std::string endpoint = request.get_string("backend", "");
  if (endpoint.empty()) {
    return error_response("bad_request", "drain/undrain: missing 'backend'");
  }
  if (!pool_.set_draining(endpoint, draining)) {
    return error_response("bad_request", "unknown backend '" + endpoint + "'");
  }
  const auto info = pool_.info(endpoint);
  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("backend", Json(endpoint));
  response.set("draining", Json(draining));
  if (info) {
    response.set("state", Json(std::string(backend_state_name(info->state))));
    response.set("inflight", Json(static_cast<std::uint64_t>(info->inflight)));
  }
  return response;
}

}  // namespace rqsim
