// Backend lifecycle management for the fleet router: health checks,
// automatic ejection / re-admission, and graceful drain.
//
// BackendPool owns the fleet membership view. Every configured backend
// stays on the consistent-hash ring permanently (ring.hpp explains why);
// what changes with health is *routability*:
//
//   kHealthy  — routable; receives new jobs.
//   kEjected  — failed `eject_after` consecutive health checks (or a live
//               request); skipped at routing time. A later successful ping
//               re-admits it automatically, and its arcs of the keyspace
//               return to it with no operator action.
//   draining  — operator flag orthogonal to health ({"op":"drain"}): no
//               new jobs are routed to it, but in-flight jobs keep running
//               and remain reachable for status/wait, so a drain completes
//               without losing work. Undrain restores routing.
//
// A background thread pings every backend each `interval_ms` with a short
// connect/IO timeout; live request failures reported by the router
// (report_failure) count against the same consecutive-failure threshold so
// a dead backend is ejected by traffic even between probe rounds.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>
#include <condition_variable>

#include "router/ring.hpp"

namespace rqsim {

enum class BackendState : std::uint8_t { kHealthy, kEjected };

const char* backend_state_name(BackendState state);

struct HealthConfig {
  int interval_ms = 500;    // probe period
  int timeout_ms = 1000;    // per-probe connect + IO bound
  int eject_after = 2;      // consecutive failures before ejection
};

/// Mutable per-backend record (snapshot copy for stats).
struct BackendInfo {
  std::string endpoint;
  BackendState state = BackendState::kHealthy;
  bool draining = false;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t pings_ok = 0;
  std::uint64_t pings_failed = 0;
  std::uint64_t ejections = 0;
  std::uint64_t jobs_routed = 0;      // submits acked by this backend
  std::uint64_t jobs_finished = 0;    // observed terminal through the router
  std::size_t inflight = 0;           // routed - finished (router's view)
};

class BackendPool {
 public:
  BackendPool(std::vector<std::string> endpoints, HealthConfig config,
              std::size_t ring_vnodes);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Start / stop the background health-check thread (idempotent).
  void start_health_checks();
  void stop_health_checks();

  /// Failover preference for a workload key: every *routable* backend
  /// (healthy and not draining) in ring order from the key's owner.
  std::vector<std::string> route_preference(std::uint64_t key) const;

  /// All configured endpoints (for stats fan-out), ring-independent order.
  std::vector<std::string> endpoints() const;

  /// Live-traffic outcomes feed the same failure accounting as probes.
  void report_success(const std::string& endpoint);
  void report_failure(const std::string& endpoint);

  /// Router-side job accounting (drives BackendInfo::inflight for drain).
  /// note_rerouted returns the in-flight slot of a job moved *off* a failed
  /// backend without counting it finished.
  void note_routed(const std::string& endpoint);
  void note_finished(const std::string& endpoint);
  void note_rerouted(const std::string& endpoint);

  /// Drain control; returns false for an unknown endpoint.
  bool set_draining(const std::string& endpoint, bool draining);

  std::vector<BackendInfo> snapshot() const;
  std::optional<BackendInfo> info(const std::string& endpoint) const;

  /// One probe round over all backends (the health thread's body; exposed
  /// so tests and num_workers==0-style embeddings can step it manually).
  void probe_once();

 private:
  HealthConfig config_;
  HashRing ring_;
  mutable std::mutex mu_;
  std::vector<BackendInfo> backends_;  // stable order = configured order
  std::thread health_thread_;
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
  bool stopping_ = false;
  bool started_ = false;

  BackendInfo* find_locked(const std::string& endpoint);
  const BackendInfo* find_locked(const std::string& endpoint) const;
  void record_failure_locked(BackendInfo& backend);
};

}  // namespace rqsim
