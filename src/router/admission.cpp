#include "router/admission.hpp"

#include <algorithm>
#include <cmath>

namespace rqsim {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)) {}

double AdmissionController::weight_of(const std::string& tenant) const {
  const auto it = config_.weights.find(tenant);
  if (it == config_.weights.end() || !(it->second > 0.0)) {
    return 1.0;
  }
  return it->second;
}

AdmissionDecision AdmissionController::try_admit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  AdmissionDecision decision;

  auto reject = [&](const std::string& reason) {
    ++state.rejected;
    const double factor =
        std::pow(2.0, static_cast<double>(
                          state.consecutive_rejections > 10
                              ? 10
                              : state.consecutive_rejections));
    ++state.consecutive_rejections;
    decision.admitted = false;
    decision.reason = reason;
    decision.retry_after_ms =
        std::min(config_.retry_after_base_ms * factor, config_.retry_after_max_ms);
    return decision;
  };

  if (config_.fleet_capacity > 0 && total_inflight_ >= config_.fleet_capacity) {
    return reject("fleet at capacity (" + std::to_string(config_.fleet_capacity) +
                  " jobs in flight)");
  }
  if (config_.tenant_quota > 0 && state.inflight >= config_.tenant_quota) {
    return reject("tenant '" + tenant + "' at quota (" +
                  std::to_string(config_.tenant_quota) + " jobs in flight)");
  }
  if (config_.fleet_capacity > 0) {
    // Weighted fair share over tenants currently holding capacity, plus the
    // requester: an idle tenant's unused share is available to others, and
    // shrinks back as soon as it returns.
    double active_weight = weight_of(tenant);
    for (const auto& [name, other] : tenants_) {
      if (name != tenant && other.inflight > 0) {
        active_weight += weight_of(name);
      }
    }
    const double share_f = static_cast<double>(config_.fleet_capacity) *
                           weight_of(tenant) / active_weight;
    const std::size_t share = static_cast<std::size_t>(
        std::ceil(share_f) < 1.0 ? 1.0 : std::ceil(share_f));
    if (state.inflight >= share) {
      return reject("tenant '" + tenant + "' over fair share (" +
                    std::to_string(share) + " of " +
                    std::to_string(config_.fleet_capacity) + " slots)");
    }
  }

  ++state.inflight;
  ++total_inflight_;
  ++state.admitted;
  state.consecutive_rejections = 0;
  decision.admitted = true;
  return decision;
}

void AdmissionController::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.inflight == 0) {
    return;  // release without admit: tolerated, never underflows
  }
  --it->second.inflight;
  it->second.consecutive_rejections = 0;
  if (total_inflight_ > 0) {
    --total_inflight_;
  }
}

std::map<std::string, TenantAdmissionStats> AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, TenantAdmissionStats> out;
  for (const auto& [name, state] : tenants_) {
    TenantAdmissionStats s;
    s.admitted = state.admitted;
    s.rejected = state.rejected;
    s.inflight = state.inflight;
    s.weight = weight_of(name);
    out.emplace(name, s);
  }
  return out;
}

std::size_t AdmissionController::total_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_inflight_;
}

}  // namespace rqsim
