// Fleet router: a standalone process speaking the SimServer JSONL protocol
// on the front and fanning work out to N backend SimServer instances.
//
// Why a router at all: the paper's redundancy elimination compounds when
// *compatible* jobs share a process — the backend batch planner merges them
// into one prefix-cached schedule (service/batch.hpp). With several
// independent backends, that reuse only happens if compatible jobs from
// different tenants land on the *same* backend. The router arranges exactly
// that with a consistent-hash ring over a canonical workload-affinity key
// (router/ring.hpp), then layers on what a shared fleet needs:
//
//   * tenant fair-share admission in front of the backends' kQueueFull
//     backpressure (router/admission.hpp), rejections carrying a
//     "retry_after_ms" hint;
//   * backend health checks with automatic ejection / re-admission and
//     operator-driven graceful drain (router/health.hpp);
//   * transparent failover: jobs routed to a backend that dies are
//     resubmitted (same spec, same seed — results are bitwise identical)
//     to the next backend in the key's ring preference;
//   * a fan-out `stats` verb that merges every backend's service counters
//     and telemetry snapshot into a single fleet view, headlined by the
//     cross-tenant batch-merge hit rate.
//
// Protocol deltas vs a single SimServer (documented in
// service/protocol.hpp): job ids in responses are *router* job ids;
// "quota_exceeded" / "no_backend" errors with "retry_after_ms"; extra ops
// {"op":"drain","backend":...} / {"op":"undrain","backend":...}; the stats
// response gains a "fleet" block. A router "shutdown" stops the router
// only — backends have their own lifecycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "router/admission.hpp"
#include "router/health.hpp"
#include "service/server.hpp"

namespace rqsim {

struct RouterConfig {
  /// Front listener: Unix socket path, or TCP port when empty (0 =
  /// ephemeral; read back with tcp_port()).
  std::string unix_path;
  int tcp_port = 0;

  /// Backend endpoints ("unix:/path" or "host:port"), the fleet membership.
  std::vector<std::string> backends;

  HealthConfig health;
  AdmissionConfig admission;

  /// Connect/retry/timeout policy for calls to backends. io_timeout_ms
  /// must stay 0 (the default) while blocking `wait` is in use.
  ClientOptions backend_client;

  /// Ring points per backend (router/ring.hpp).
  std::size_t ring_vnodes = 64;

  /// Start the periodic health-check thread in run(). Tests that step
  /// probes deterministically via pool().probe_once() turn this off.
  bool health_thread = true;
};

class FleetRouter {
 public:
  /// Binds the front listener immediately (throws rqsim::Error).
  explicit FleetRouter(RouterConfig config);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Accept loop; returns after stop() or a shutdown request.
  void run();
  void stop();

  int tcp_port() const { return tcp_port_; }
  std::string endpoint() const;

  /// Transport-free request handling (the accept loop and in-process tests
  /// share it). Thread-safe.
  Json handle(const Json& request);

  BackendPool& pool() { return pool_; }
  AdmissionController& admission() { return admission_; }

 private:
  /// One routed job. The original submit request is kept verbatim so a
  /// backend failure can be healed by resubmitting the identical spec
  /// (deterministic seed => bitwise-identical result) elsewhere.
  struct RoutedJob {
    std::string backend;
    std::uint64_t backend_job = 0;
    std::uint64_t generation = 0;  // bumped on every failover resubmit
    std::uint64_t key = 0;         // workload-affinity key
    std::string tenant;
    Json submit_request;
    bool finished = false;         // admission released, inflight returned
    bool has_terminal = false;     // terminal_response cached
    Json terminal_response;
  };

  Json handle_submit(const Json& request);
  Json handle_job_op(const Json& request, const std::string& op);
  Json handle_stats();
  Json handle_drain(const Json& request, bool draining);
  /// Fan out trace start/stop to every backend; `collect` additionally
  /// pulls each backend's Chrome-trace buffer, measures its clock offset
  /// with a bracketed ping, and returns a "processes" array whose epochs
  /// are corrected into the router's clock domain (trace-merge input).
  Json handle_trace(const Json& request);

  /// Re-home a job whose backend failed at `failed_generation`. Returns
  /// true when the job is routed again (or was concurrently healed).
  bool failover(std::uint64_t router_job, std::uint64_t failed_generation);

  /// Mark a job finished exactly once: cache the terminal response (when
  /// given), release admission, return the backend in-flight slot.
  void finish_job(std::uint64_t router_job, const Json* terminal_response);

  void handle_connection(int fd);

  RouterConfig config_;
  BackendPool pool_;
  AdmissionController admission_;

  std::mutex jobs_mu_;
  std::map<std::uint64_t, RoutedJob> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::mutex failover_mu_;  // serializes resubmissions (one at a time)

  std::atomic<std::uint64_t> routed_total_{0};
  std::atomic<std::uint64_t> resubmits_total_{0};
  std::atomic<std::uint64_t> rejected_quota_total_{0};
  std::atomic<std::uint64_t> rejected_no_backend_total_{0};

  std::atomic<int> listen_fd_{-1};
  int tcp_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::vector<int> open_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace rqsim
