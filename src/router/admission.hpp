// Tenant quotas and weighted fair-share admission for the fleet router.
//
// The backends already have a backpressure signal — the bounded queue's
// kQueueFull — but it is first-come-first-served: one tenant submitting in
// a tight loop can own every queue slot in the fleet. The router therefore
// admits submits *per tenant* before routing, so capacity under contention
// divides by configured weight instead of by arrival rate.
//
// Admission math (DESIGN.md §11): the router tracks jobs in flight (routed,
// not yet observed terminal) per tenant. A submit from tenant t is admitted
// iff all of:
//
//   1. inflight_total < fleet_capacity                  (fleet not saturated)
//   2. inflight_t     < tenant_quota                    (hard per-tenant cap)
//   3. inflight_t     < share_t                         (weighted fair share)
//
//      share_t = max(1, ceil(fleet_capacity · w_t / Σ w_a))
//
// where the sum runs over *active* tenants (in flight > 0, plus t itself)
// — an idle fleet lets one tenant use its whole fair share immediately, and
// shares rebalance as tenants come and go. Checks 1 and 3 are skipped when
// fleet_capacity is 0 (unlimited), check 2 when tenant_quota is 0. Weights
// default to 1.0, so with no configuration at all admission degrades to
// equal shares.
//
// Rejections carry a retry-after hint: base_ms · 2^(consecutive rejections
// of this tenant), capped — a cheap server-steered exponential backoff that
// spreads thundering-herd retries without per-client state. The hint resets
// on the next admit or release.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rqsim {

struct AdmissionConfig {
  /// Total routed-and-unfinished jobs across all tenants; 0 = unlimited.
  std::size_t fleet_capacity = 0;

  /// Hard in-flight cap per tenant, applied before fair share; 0 = none.
  std::size_t tenant_quota = 0;

  /// Fair-share weights by tenant name; unlisted tenants weigh 1.0.
  std::map<std::string, double> weights;

  /// Base of the exponential retry-after hint.
  double retry_after_base_ms = 25.0;

  /// Cap on the retry-after hint.
  double retry_after_max_ms = 2000.0;
};

struct AdmissionDecision {
  bool admitted = false;
  std::string reason;          // human detail when rejected
  double retry_after_ms = 0.0; // backoff hint when rejected
};

struct TenantAdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::size_t inflight = 0;
  double weight = 1.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Decide and, when admitted, account one in-flight job for the tenant.
  AdmissionDecision try_admit(const std::string& tenant);

  /// Return one in-flight slot (job observed terminal or routing failed).
  void release(const std::string& tenant);

  std::map<std::string, TenantAdmissionStats> stats() const;
  std::size_t total_inflight() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  double weight_of(const std::string& tenant) const;

  struct TenantState {
    std::size_t inflight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint32_t consecutive_rejections = 0;
  };

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  std::size_t total_inflight_ = 0;
};

}  // namespace rqsim
