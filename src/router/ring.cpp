#include "router/ring.hpp"

namespace rqsim {

std::uint64_t stable_hash64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer: FNV alone keeps nearby inputs in nearby buckets;
  // ring placement needs avalanche.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t workload_affinity_key(const Json& submit_request) {
  // Canonicalize through Json::dump (sorted keys, deterministic number
  // formatting) so field order on the wire cannot split a workload class.
  Json canon = Json::object();
  if (submit_request.has("workload")) {
    canon.set("workload", submit_request.at("workload"));
  }
  canon.set("mode", Json(submit_request.get_string("mode", "cached")));
  canon.set("max_states", Json(submit_request.get_u64("max_states", 0)));
  canon.set("fuse", Json(submit_request.get_bool("fuse", false)));
  canon.set("analyze", Json(submit_request.get_bool("analyze", false)));
  canon.set("parallel", Json(submit_request.get_u64("threads", 1) > 1));
  return stable_hash64(canon.dump());
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& backend) {
  if (!backends_.insert(backend).second) {
    return;
  }
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::uint64_t point =
        stable_hash64(backend + "#" + std::to_string(v));
    // On the astronomically unlikely point collision, first-added wins;
    // ownership just shifts by one vnode arc.
    ring_.emplace(point, backend);
  }
}

void HashRing::remove(const std::string& backend) {
  if (backends_.erase(backend) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == backend) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::contains(const std::string& backend) const {
  return backends_.count(backend) > 0;
}

std::string HashRing::owner(std::uint64_t key) const {
  if (ring_.empty()) {
    return std::string();
  }
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around
  }
  return it->second;
}

std::vector<std::string> HashRing::preference(std::uint64_t key,
                                              std::size_t count) const {
  std::vector<std::string> order;
  if (ring_.empty() || count == 0) {
    return order;
  }
  const std::size_t want = count < backends_.size() ? count : backends_.size();
  std::set<std::string> seen;
  auto it = ring_.lower_bound(key);
  for (std::size_t steps = 0; steps < ring_.size() && order.size() < want;
       ++steps) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    if (seen.insert(it->second).second) {
      order.push_back(it->second);
    }
    ++it;
  }
  return order;
}

}  // namespace rqsim
