#include "router/health.hpp"

#include <chrono>
#include <utility>

#include "service/json.hpp"
#include "service/server.hpp"

namespace rqsim {

const char* backend_state_name(BackendState state) {
  switch (state) {
    case BackendState::kHealthy:
      return "healthy";
    case BackendState::kEjected:
      return "ejected";
  }
  return "unknown";
}

BackendPool::BackendPool(std::vector<std::string> endpoints, HealthConfig config,
                         std::size_t ring_vnodes)
    : config_(config), ring_(ring_vnodes) {
  backends_.reserve(endpoints.size());
  for (auto& endpoint : endpoints) {
    if (find_locked(endpoint) != nullptr) {
      continue;  // duplicate endpoint in config
    }
    BackendInfo info;
    info.endpoint = endpoint;
    ring_.add(endpoint);
    backends_.push_back(std::move(info));
  }
}

BackendPool::~BackendPool() { stop_health_checks(); }

void BackendPool::start_health_checks() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) {
      return;
    }
    started_ = true;
    stopping_ = false;
  }
  health_thread_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                          [this] { return stopping_; });
        if (stopping_) {
          return;
        }
      }
      probe_once();
    }
  });
}

void BackendPool::stop_health_checks() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) {
      return;
    }
    started_ = false;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (health_thread_.joinable()) {
    health_thread_.join();
  }
}

void BackendPool::probe_once() {
  // Snapshot endpoints without holding the lock over network I/O.
  std::vector<std::string> endpoints = this->endpoints();
  for (const auto& endpoint : endpoints) {
    bool ok = false;
    try {
      ClientOptions probe;
      probe.connect_timeout_ms = config_.timeout_ms;
      probe.io_timeout_ms = config_.timeout_ms;
      probe.max_attempts = 1;
      ServiceClient client = ServiceClient::connect(endpoint, probe);
      Json ping = Json::object();
      ping.set("op", Json(std::string("ping")));
      const Json response = client.request(ping);
      ok = response.get_bool("ok", false);
    } catch (const std::exception&) {
      ok = false;
    }

    std::lock_guard<std::mutex> lock(mu_);
    BackendInfo* backend = find_locked(endpoint);
    if (backend == nullptr) {
      continue;
    }
    if (ok) {
      ++backend->pings_ok;
      backend->consecutive_failures = 0;
      backend->state = BackendState::kHealthy;  // re-admission
    } else {
      ++backend->pings_failed;
      record_failure_locked(*backend);
    }
  }
}

std::vector<std::string> BackendPool::route_preference(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> order = ring_.preference(key, backends_.size());
  std::vector<std::string> routable;
  routable.reserve(order.size());
  for (const auto& endpoint : order) {
    const BackendInfo* backend = find_locked(endpoint);
    if (backend != nullptr && backend->state == BackendState::kHealthy &&
        !backend->draining) {
      routable.push_back(endpoint);
    }
  }
  return routable;
}

std::vector<std::string> BackendPool::endpoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    out.push_back(backend.endpoint);
  }
  return out;
}

void BackendPool::report_success(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr) {
    return;
  }
  backend->consecutive_failures = 0;
  backend->state = BackendState::kHealthy;
}

void BackendPool::report_failure(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr) {
    return;
  }
  record_failure_locked(*backend);
}

void BackendPool::note_routed(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr) {
    return;
  }
  ++backend->jobs_routed;
  ++backend->inflight;
}

void BackendPool::note_finished(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr || backend->inflight == 0) {
    return;
  }
  ++backend->jobs_finished;
  --backend->inflight;
}

void BackendPool::note_rerouted(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr || backend->inflight == 0) {
    return;
  }
  --backend->inflight;
}

bool BackendPool::set_draining(const std::string& endpoint, bool draining) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr) {
    return false;
  }
  backend->draining = draining;
  return true;
}

std::vector<BackendInfo> BackendPool::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_;
}

std::optional<BackendInfo> BackendPool::info(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const BackendInfo* backend = find_locked(endpoint);
  if (backend == nullptr) {
    return std::nullopt;
  }
  return *backend;
}

BackendInfo* BackendPool::find_locked(const std::string& endpoint) {
  for (auto& backend : backends_) {
    if (backend.endpoint == endpoint) {
      return &backend;
    }
  }
  return nullptr;
}

const BackendInfo* BackendPool::find_locked(const std::string& endpoint) const {
  return const_cast<BackendPool*>(this)->find_locked(endpoint);
}

void BackendPool::record_failure_locked(BackendInfo& backend) {
  ++backend.consecutive_failures;
  if (backend.state == BackendState::kHealthy &&
      backend.consecutive_failures >=
          static_cast<std::uint32_t>(config_.eject_after)) {
    backend.state = BackendState::kEjected;
    ++backend.ejections;
  }
}

}  // namespace rqsim
