// Terminal measurement: sampling classical outcomes from a final state.
//
// The noisy-simulation pipeline measures once at the end of a trial, so
// sampling never collapses the state — many trials can share one final
// state and draw independent outcomes from its distribution.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// Marginal probability distribution over a subset of qubits.
/// Index i of the result encodes measured_qubits[k] at bit k.
std::vector<double> measurement_probabilities(const StateVector& state,
                                              const std::vector<qubit_t>& measured_qubits);

/// Sample one outcome (bit k <- measured_qubits[k]) from a distribution
/// returned by measurement_probabilities.
std::uint64_t sample_outcome(const std::vector<double>& probs, Rng& rng);

/// Sample from the permuted distribution probs'[i] = probs[i ^ flip]
/// without materializing it: the scan visits outcome indices in the same
/// ascending order sample_outcome would on the permuted vector, consuming
/// the Rng identically — so a Pauli-frame-collapsed trial draws the
/// bitwise-identical outcome its own forked statevector would have drawn.
/// `flip` is the frame's measured-bit flip mask (trial/frame.hpp,
/// frame_outcome_flip) and must be < probs.size().
std::uint64_t sample_outcome_permuted(const std::vector<double>& probs,
                                      std::uint64_t flip, Rng& rng);

/// Sample directly from a state (convenience for examples).
std::uint64_t sample_state(const StateVector& state,
                           const std::vector<qubit_t>& measured_qubits, Rng& rng);

/// Histogram of sampled outcomes; key encodes bits as in sample_outcome.
using OutcomeHistogram = std::map<std::uint64_t, std::uint64_t>;

/// Total-variation distance between two histograms (normalized by counts).
double total_variation_distance(const OutcomeHistogram& a, const OutcomeHistogram& b);

}  // namespace rqsim
