#include "sim/sparse.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

SparseStateVector::SparseStateVector(unsigned num_qubits) : num_qubits_(num_qubits) {
  RQSIM_CHECK(num_qubits >= 1 && num_qubits <= 63,
              "SparseStateVector: num_qubits must be in [1, 63]");
  amps_.emplace(0, cplx(1.0));
}

cplx SparseStateVector::amplitude(std::uint64_t index) const {
  const auto it = amps_.find(index);
  return it == amps_.end() ? cplx(0.0) : it->second;
}

double SparseStateVector::norm_squared() const {
  double acc = 0.0;
  for (const auto& [idx, amp] : amps_) {
    (void)idx;
    acc += std::norm(amp);
  }
  return acc;
}

double SparseStateVector::probability(std::uint64_t index) const {
  return std::norm(amplitude(index));
}

void SparseStateVector::set_prune_threshold(double threshold) {
  RQSIM_CHECK(threshold >= 0.0 && threshold < 1e-3,
              "SparseStateVector: unreasonable prune threshold");
  prune_threshold_ = threshold;
}

void SparseStateVector::insert_pruned(std::unordered_map<std::uint64_t, cplx>& map,
                                      std::uint64_t key, cplx value) const {
  if (std::abs(value) > prune_threshold_) {
    map.emplace(key, value);
  }
}

void SparseStateVector::apply_mat2(const Mat2& m, qubit_t target) {
  RQSIM_CHECK(target < num_qubits_, "SparseStateVector::apply_mat2: bad target");
  const std::uint64_t mask = std::uint64_t{1} << target;
  std::unordered_map<std::uint64_t, cplx> next;
  next.reserve(amps_.size() * 2);
  for (const auto& [idx, amp] : amps_) {
    (void)amp;
    const std::uint64_t base = idx & ~mask;
    if (next.count(base) != 0 || next.count(base | mask) != 0) {
      continue;  // pair already produced
    }
    const cplx a0 = amplitude(base);
    const cplx a1 = amplitude(base | mask);
    insert_pruned(next, base, m.at(0, 0) * a0 + m.at(0, 1) * a1);
    insert_pruned(next, base | mask, m.at(1, 0) * a0 + m.at(1, 1) * a1);
  }
  amps_ = std::move(next);
}

void SparseStateVector::apply_cx(qubit_t control, qubit_t target) {
  RQSIM_CHECK(control < num_qubits_ && target < num_qubits_ && control != target,
              "SparseStateVector::apply_cx: bad operands");
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  std::unordered_map<std::uint64_t, cplx> next;
  next.reserve(amps_.size());
  for (const auto& [idx, amp] : amps_) {
    next.emplace((idx & cbit) ? (idx ^ tbit) : idx, amp);
  }
  amps_ = std::move(next);
}

void SparseStateVector::apply_phase(qubit_t target, cplx phase) {
  RQSIM_CHECK(target < num_qubits_, "SparseStateVector::apply_phase: bad target");
  const std::uint64_t mask = std::uint64_t{1} << target;
  for (auto& [idx, amp] : amps_) {
    if (idx & mask) {
      amp *= phase;
    }
  }
}

void SparseStateVector::apply_cphase(qubit_t a, qubit_t b, cplx phase) {
  RQSIM_CHECK(a < num_qubits_ && b < num_qubits_ && a != b,
              "SparseStateVector::apply_cphase: bad operands");
  const std::uint64_t both = (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
  for (auto& [idx, amp] : amps_) {
    if ((idx & both) == both) {
      amp *= phase;
    }
  }
}

void SparseStateVector::apply_swap(qubit_t a, qubit_t b) {
  RQSIM_CHECK(a < num_qubits_ && b < num_qubits_ && a != b,
              "SparseStateVector::apply_swap: bad operands");
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  std::unordered_map<std::uint64_t, cplx> next;
  next.reserve(amps_.size());
  for (const auto& [idx, amp] : amps_) {
    const bool av = (idx & abit) != 0;
    const bool bv = (idx & bbit) != 0;
    std::uint64_t out = idx;
    if (av != bv) {
      out ^= abit | bbit;
    }
    next.emplace(out, amp);
  }
  amps_ = std::move(next);
}

void SparseStateVector::apply_ccx(qubit_t c1, qubit_t c2, qubit_t target) {
  RQSIM_CHECK(c1 < num_qubits_ && c2 < num_qubits_ && target < num_qubits_ &&
                  c1 != c2 && c1 != target && c2 != target,
              "SparseStateVector::apply_ccx: bad operands");
  const std::uint64_t c1bit = std::uint64_t{1} << c1;
  const std::uint64_t c2bit = std::uint64_t{1} << c2;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  std::unordered_map<std::uint64_t, cplx> next;
  next.reserve(amps_.size());
  for (const auto& [idx, amp] : amps_) {
    next.emplace(((idx & c1bit) && (idx & c2bit)) ? (idx ^ tbit) : idx, amp);
  }
  amps_ = std::move(next);
}

void SparseStateVector::apply_gate(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::Z:
      apply_phase(gate.qubits[0], cplx(-1.0));
      return;
    case GateKind::S:
      apply_phase(gate.qubits[0], cplx(0.0, 1.0));
      return;
    case GateKind::Sdg:
      apply_phase(gate.qubits[0], cplx(0.0, -1.0));
      return;
    case GateKind::T:
      apply_phase(gate.qubits[0], std::exp(cplx(0.0, kPi / 4.0)));
      return;
    case GateKind::Tdg:
      apply_phase(gate.qubits[0], std::exp(cplx(0.0, -kPi / 4.0)));
      return;
    case GateKind::P:
      apply_phase(gate.qubits[0], std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::CX:
      apply_cx(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CZ:
      apply_cphase(gate.qubits[0], gate.qubits[1], cplx(-1.0));
      return;
    case GateKind::CP:
      apply_cphase(gate.qubits[0], gate.qubits[1], std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::SWAP:
      apply_swap(gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CCX:
      apply_ccx(gate.qubits[0], gate.qubits[1], gate.qubits[2]);
      return;
    default:
      RQSIM_CHECK(gate.arity() == 1, "SparseStateVector::apply_gate: unhandled kind");
      apply_mat2(gate_matrix1(gate), gate.qubits[0]);
      return;
  }
}

StateVector SparseStateVector::to_dense() const {
  RQSIM_CHECK(num_qubits_ <= 30, "SparseStateVector::to_dense: too many qubits");
  StateVector dense(num_qubits_);
  dense[0] = 0.0;
  for (const auto& [idx, amp] : amps_) {
    dense[idx] = amp;
  }
  return dense;
}

std::vector<double> SparseStateVector::measurement_probabilities(
    const std::vector<qubit_t>& measured_qubits) const {
  RQSIM_CHECK(!measured_qubits.empty() && measured_qubits.size() <= 30,
              "SparseStateVector::measurement_probabilities: bad qubit list");
  for (qubit_t q : measured_qubits) {
    RQSIM_CHECK(q < num_qubits_,
                "SparseStateVector::measurement_probabilities: qubit out of range");
  }
  std::vector<double> probs(pow2(static_cast<unsigned>(measured_qubits.size())), 0.0);
  for (const auto& [idx, amp] : amps_) {
    std::uint64_t key = 0;
    for (std::size_t k = 0; k < measured_qubits.size(); ++k) {
      key |= static_cast<std::uint64_t>(get_bit(idx, measured_qubits[k])) << k;
    }
    probs[key] += std::norm(amp);
  }
  return probs;
}

SparseStateVector sparse_simulate(const Circuit& circuit) {
  SparseStateVector state(circuit.num_qubits());
  for (const Gate& g : circuit.gates()) {
    state.apply_gate(g);
  }
  return state;
}

}  // namespace rqsim
