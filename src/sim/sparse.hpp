// Sparse statevector simulator.
//
// The paper's related work covers simulators that exploit *sparsity inside
// a single trial* (Viamontes et al.). This substrate implements that
// family: amplitudes live in a hash map keyed by basis index, so circuits
// that keep few nonzero amplitudes (GHZ/graph-state preparation, reversible
// arithmetic on basis states, stabilizer-like cores with few branching
// gates) simulate far beyond the dense 30-qubit limit — up to 63 qubits.
//
// Orthogonal to the paper's inter-trial optimization (as the paper notes);
// within this repository it also cross-validates the dense kernels.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

class SparseStateVector {
 public:
  /// |0…0⟩; supports up to 63 qubits.
  explicit SparseStateVector(unsigned num_qubits);

  unsigned num_qubits() const { return num_qubits_; }

  /// Number of stored (nonzero) amplitudes.
  std::size_t nnz() const { return amps_.size(); }

  /// Amplitude of basis state `index` (0 if not stored).
  cplx amplitude(std::uint64_t index) const;

  double norm_squared() const;
  double probability(std::uint64_t index) const;

  /// Amplitudes below this magnitude are dropped after each gate
  /// (default 1e-14 — far below any accumulation error of interest).
  void set_prune_threshold(double threshold);

  void apply_mat2(const Mat2& m, qubit_t target);
  void apply_cx(qubit_t control, qubit_t target);
  void apply_phase(qubit_t target, cplx phase);
  void apply_cphase(qubit_t a, qubit_t b, cplx phase);
  void apply_swap(qubit_t a, qubit_t b);
  void apply_ccx(qubit_t c1, qubit_t c2, qubit_t target);

  /// Dispatch a circuit gate (1-, 2- and 3-qubit kinds all supported).
  void apply_gate(const Gate& gate);

  /// Densify (requires num_qubits <= 30).
  StateVector to_dense() const;

  /// Marginal outcome distribution over `measured_qubits` (<= 30 of them).
  std::vector<double> measurement_probabilities(
      const std::vector<qubit_t>& measured_qubits) const;

 private:
  unsigned num_qubits_ = 0;
  double prune_threshold_ = 1e-14;
  std::unordered_map<std::uint64_t, cplx> amps_;

  void insert_pruned(std::unordered_map<std::uint64_t, cplx>& map, std::uint64_t key,
                     cplx value) const;
};

/// Simulate a circuit sparsely from |0…0⟩.
SparseStateVector sparse_simulate(const Circuit& circuit);

}  // namespace rqsim
