#include "sim/reference.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

DenseMatrix gate_to_dense(const Gate& gate, unsigned num_qubits) {
  switch (gate.arity()) {
    case 1:
      return DenseMatrix::lift1(gate_matrix1(gate), gate.qubits[0], num_qubits);
    case 2:
      return DenseMatrix::lift2(gate_matrix2(gate), gate.qubits[0], gate.qubits[1],
                                num_qubits);
    case 3: {
      // CCX: permutation matrix flipping the target where both controls set.
      RQSIM_CHECK(gate.kind == GateKind::CCX, "gate_to_dense: unknown 3-qubit gate");
      const std::size_t dim = pow2(num_qubits);
      DenseMatrix m(dim);
      const std::uint64_t c1 = std::uint64_t{1} << gate.qubits[0];
      const std::uint64_t c2 = std::uint64_t{1} << gate.qubits[1];
      const std::uint64_t t = std::uint64_t{1} << gate.qubits[2];
      for (std::uint64_t col = 0; col < dim; ++col) {
        const std::uint64_t row = ((col & c1) && (col & c2)) ? (col ^ t) : col;
        m.at(row, col) = 1.0;
      }
      return m;
    }
    default:
      RQSIM_CHECK(false, "gate_to_dense: unsupported arity");
  }
  return DenseMatrix();
}

DenseMatrix circuit_to_dense(const Circuit& circuit) {
  RQSIM_CHECK(circuit.num_qubits() <= 10,
              "circuit_to_dense: reference simulator limited to 10 qubits");
  DenseMatrix acc = DenseMatrix::identity(pow2(circuit.num_qubits()));
  for (const Gate& g : circuit.gates()) {
    acc = gate_to_dense(g, circuit.num_qubits()) * acc;
  }
  return acc;
}

StateVector reference_simulate(const Circuit& circuit) {
  RQSIM_CHECK(circuit.num_qubits() <= 10,
              "reference_simulate: limited to 10 qubits");
  StateVector state(circuit.num_qubits());
  std::vector<cplx> v = state.amplitudes();
  for (const Gate& g : circuit.gates()) {
    v = gate_to_dense(g, circuit.num_qubits()).apply(v);
  }
  state.amplitudes() = v;
  return state;
}

}  // namespace rqsim
