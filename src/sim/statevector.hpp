// Full statevector of an n-qubit register.
//
// Amplitude order: basis state |b_{n-1} … b_1 b_0⟩ lives at index
// Σ b_k 2^k (qubit 0 is the least-significant bit).
//
// Copying: a StateVector copy is a 2^n memcpy plus a possible
// page-faulting allocation, so checkpoint copies never use the copy
// constructor directly — they go through StateBufferPool::acquire_copy
// (recycled buffers) or CowState (sim/buffer_pool.hpp), which defers the
// copy until the buffer is first written. check_source_rules.sh rule 5
// enforces this outside sim/buffer_pool.*.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace rqsim {

class StateVector {
 public:
  StateVector() = default;

  /// |0…0⟩ on `num_qubits` qubits.
  explicit StateVector(unsigned num_qubits);

  /// Basis state |index⟩.
  StateVector(unsigned num_qubits, std::uint64_t basis_index);

  /// Adopt an existing amplitude buffer (size must be 2^num_qubits). Used
  /// by the checkpoint buffer pool to recycle allocations.
  static StateVector from_buffer(unsigned num_qubits, std::vector<cplx> buffer);

  /// Move the amplitude buffer out, leaving this state empty (0 qubits).
  std::vector<cplx> take_buffer();

  unsigned num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  cplx& operator[](std::size_t i) { return amps_[i]; }
  const cplx& operator[](std::size_t i) const { return amps_[i]; }

  const std::vector<cplx>& amplitudes() const { return amps_; }
  std::vector<cplx>& amplitudes() { return amps_; }

  /// Reset to |0…0⟩.
  void reset();

  /// Σ |amp|² — 1.0 for a normalized state.
  double norm_squared() const;

  /// Probability of measuring basis state `index`.
  double probability(std::uint64_t index) const;

  /// Fidelity |⟨a|b⟩|² with another state of the same size.
  double fidelity(const StateVector& other) const;

  /// Max |a_i - b_i| over all amplitudes.
  double max_abs_diff(const StateVector& other) const;

  /// Exact equality of every amplitude (used by the bitwise-equivalence
  /// proof between baseline and cached execution).
  bool bitwise_equal(const StateVector& other) const;

 private:
  unsigned num_qubits_ = 0;
  std::vector<cplx> amps_;
};

}  // namespace rqsim
