// Gate-application kernels: in-place matrix-vector updates on a StateVector.
//
// Each kernel is one "basic operation" in the paper's computation metric.
// The bit-twiddling index transforms live in common/bits.hpp.
#pragma once

#include "circuit/fusion.hpp"
#include "circuit/gate.hpp"
#include "linalg/matrix.hpp"
#include "linalg/pauli.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// Apply a general 2x2 unitary to `target`.
void apply_mat2(StateVector& state, const Mat2& m, qubit_t target);

/// Apply a general 4x4 unitary to (q1, q0): matrix index = (bit(q1)<<1)|bit(q0).
void apply_mat4(StateVector& state, const Mat4& m, qubit_t q1, qubit_t q0);

/// Specialized fast paths.
void apply_x(StateVector& state, qubit_t target);
void apply_y(StateVector& state, qubit_t target);
void apply_z(StateVector& state, qubit_t target);
void apply_h(StateVector& state, qubit_t target);
void apply_phase(StateVector& state, qubit_t target, cplx phase);
void apply_cx(StateVector& state, qubit_t control, qubit_t target);
void apply_cz(StateVector& state, qubit_t a, qubit_t b);
void apply_cphase(StateVector& state, qubit_t a, qubit_t b, cplx phase);
void apply_swap(StateVector& state, qubit_t a, qubit_t b);
void apply_ccx(StateVector& state, qubit_t c1, qubit_t c2, qubit_t target);

/// Apply a circuit gate, dispatching to the fast path where one exists.
void apply_gate(StateVector& state, const Gate& gate);

/// Apply a fused gate program (see circuit/fusion.hpp) in op order.
void apply_fused(StateVector& state, const FusedProgram& program);

/// Apply a single-qubit Pauli error operator.
void apply_pauli(StateVector& state, Pauli p, qubit_t target);

/// Apply a two-qubit Pauli-pair error operator to (q1, q0).
void apply_pauli_pair(StateVector& state, PauliPair pair, qubit_t q1, qubit_t q0);

}  // namespace rqsim
