// Checkpoint buffer pool: recycles freed StateVector allocations.
//
// The prefix-caching executor forks a checkpoint on every branch of the
// trial tree and drops it when the branch is exhausted — thousands of
// push/pop cycles of 2^n-sized buffers per run. Allocating each fork fresh
// costs a page-faulting malloc of up to hundreds of MiB; the pool instead
// keeps dropped buffers on a free list and turns a fork into one memcpy
// into already-mapped memory.
//
// The pool is not thread-safe; each executor (one per trial-parallel
// worker) owns its own pool, mirroring its private checkpoint stack.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/statevector.hpp"

namespace rqsim {

class StateBufferPool {
 public:
  /// `max_pooled` bounds the free list; excess released buffers are freed.
  explicit StateBufferPool(std::size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  /// A StateVector holding a copy of `src`, backed by a recycled buffer
  /// when one is available.
  StateVector acquire_copy(const StateVector& src);

  /// Return a dead StateVector's buffer to the free list.
  void release(StateVector&& state);

  /// Drop all pooled buffers.
  void clear();

  std::size_t pooled() const { return free_.size(); }
  std::uint64_t reuse_count() const { return reuses_; }
  std::uint64_t alloc_count() const { return allocs_; }

 private:
  std::size_t max_pooled_;
  std::vector<std::vector<cplx>> free_;
  std::uint64_t reuses_ = 0;
  std::uint64_t allocs_ = 0;
};

}  // namespace rqsim
