// Checkpoint buffer pool: recycles freed StateVector allocations.
//
// The prefix-caching executor forks a checkpoint on every branch of the
// trial tree and drops it when the branch is exhausted — thousands of
// push/pop cycles of 2^n-sized buffers per run. Allocating each fork fresh
// costs a page-faulting malloc of up to hundreds of MiB; the pool instead
// keeps dropped buffers on a free list and turns a fork into one memcpy
// into already-mapped memory.
//
// Sharding (the multi-threaded tree executor's fork/drop path): the pool
// can be constructed with one shard per worker thread. A shard's free list
// is touched only by its owning worker — acquire and release on the hot
// path perform no synchronization at all (not even an atomic on the list) —
// with a mutex-guarded global overflow list as the cold-path fallback when
// a shard runs dry or over its cap. The single-shard default (shard 0)
// preserves the original single-threaded API: callers that never pass a
// shard index get the exact old behavior.
//
// Thread contract: shard s may only be used by the thread that owns it;
// clear() and the statistics accessors require external quiescence (no
// concurrent acquire/release), which every executor guarantees by reading
// them only after its workers have joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/statevector.hpp"

namespace rqsim {

class StateBufferPool {
 public:
  /// `max_pooled` bounds the total number of retained free buffers across
  /// all shards plus the global overflow list; excess released buffers are
  /// freed. `num_shards` >= 1 (one per worker thread for lock-free reuse).
  explicit StateBufferPool(std::size_t max_pooled = 64, std::size_t num_shards = 1);

  StateBufferPool(const StateBufferPool&) = delete;
  StateBufferPool& operator=(const StateBufferPool&) = delete;

  /// A StateVector holding a copy of `src`, backed by a recycled buffer
  /// when one is available. `shard` must be owned by the calling thread.
  StateVector acquire_copy(const StateVector& src, std::size_t shard = 0);

  /// Return a dead StateVector's buffer to the free list.
  void release(StateVector&& state, std::size_t shard = 0);

  /// Drop all pooled buffers (requires quiescence).
  void clear();

  std::size_t num_shards() const { return shards_.size(); }

  /// Total retained free buffers (requires quiescence).
  std::size_t pooled() const;

  std::uint64_t reuse_count() const {
    return reuses_.load(std::memory_order_relaxed);
  }
  std::uint64_t alloc_count() const {
    return allocs_.load(std::memory_order_relaxed);
  }

 private:
  // Padded so two workers' shard headers never share a cache line.
  struct alignas(64) Shard {
    std::vector<std::vector<cplx>> free;
  };

  std::size_t max_pooled_;
  std::size_t per_shard_cap_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> allocs_{0};

  mutable std::mutex global_mutex_;
  std::vector<std::vector<cplx>> global_free_;
};

}  // namespace rqsim
