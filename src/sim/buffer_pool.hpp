// Checkpoint buffer pool: recycles freed StateVector allocations, plus the
// copy-on-write checkpoint handle (CowState) built on top of it.
//
// The prefix-caching executor forks a checkpoint on every branch of the
// trial tree and drops it when the branch is exhausted — thousands of
// push/pop cycles of 2^n-sized buffers per run. Allocating each fork fresh
// costs a page-faulting malloc of up to hundreds of MiB; the pool instead
// keeps dropped buffers on a free list and turns a fork into one memcpy
// into already-mapped memory.
//
// CowState goes one step further: a fork becomes a refcount bump on the
// parent's buffer, and the 2^n copy is deferred until someone actually
// *writes* a shared buffer (materialization). Forks whose subtree diverges
// immediately and drops the shared prefix without touching it never pay
// the copy at all, and — critically for the parallel executor's admission
// control — an unmaterialized fork occupies no memory, so it needs no MSV
// token while it waits in a work deque.
//
// Sharding (the multi-threaded tree executor's fork/drop path): the pool
// can be constructed with one shard per worker thread. A shard's free list
// is touched only by its owning worker — acquire and release on the hot
// path perform no synchronization at all (not even an atomic on the list) —
// with a mutex-guarded global overflow list as the cold-path fallback when
// a shard runs dry or over its cap. The single-shard default (shard 0)
// preserves the original single-threaded API: callers that never pass a
// shard index get the exact old behavior.
//
// Thread contract: shard s may only be used by the thread that owns it;
// clear() and the statistics accessors require external quiescence (no
// concurrent acquire/release), which every executor guarantees by reading
// them only after its workers have joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/statevector.hpp"

namespace rqsim {

class StateBufferPool {
 public:
  /// `max_pooled` bounds the total number of retained free buffers across
  /// all shards plus the global overflow list; excess released buffers are
  /// freed. `num_shards` >= 1 (one per worker thread for lock-free reuse).
  explicit StateBufferPool(std::size_t max_pooled = 64, std::size_t num_shards = 1);

  StateBufferPool(const StateBufferPool&) = delete;
  StateBufferPool& operator=(const StateBufferPool&) = delete;

  /// A StateVector holding a copy of `src`, backed by a recycled buffer
  /// when one is available. `shard` must be owned by the calling thread.
  StateVector acquire_copy(const StateVector& src, std::size_t shard = 0);

  /// Return a dead StateVector's buffer to the free list.
  void release(StateVector&& state, std::size_t shard = 0);

  /// Park up to `per_shard` zero-filled 2^num_qubits buffers on every
  /// shard's free list (bounded by the shard cap), before any worker
  /// starts. Pre-warmed buffers are page-faulted here, on the setup
  /// thread, so the workers' first materializations hit the lock-free
  /// shard path instead of racing into fresh allocations; they count as
  /// reuses when acquired, never as allocs (see prewarm_count). Requires
  /// quiescence.
  void prewarm(unsigned num_qubits, std::size_t per_shard);

  /// Drop all pooled buffers (requires quiescence).
  void clear();

  std::size_t num_shards() const { return shards_.size(); }

  /// Total retained free buffers (requires quiescence).
  std::size_t pooled() const;

  std::uint64_t reuse_count() const {
    return reuses_.load(std::memory_order_relaxed);
  }
  std::uint64_t alloc_count() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t prewarm_count() const {
    return prewarmed_.load(std::memory_order_relaxed);
  }

 private:
  // Padded so two workers' shard headers never share a cache line.
  struct alignas(64) Shard {
    std::vector<std::vector<cplx>> free;
  };

  std::size_t max_pooled_;
  std::size_t per_shard_cap_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> prewarmed_{0};

  mutable std::mutex global_mutex_;
  std::vector<std::vector<cplx>> global_free_;
};

/// Copy-on-write checkpoint handle: a move-only reference to a shared,
/// atomically refcounted StateVector.
///
///   fork()   — a new handle on the same buffer; one relaxed fetch_add, no
///              copy, no allocation. O(1) regardless of 2^n.
///   mutate() — mutable access. Sole owner: writes in place. Shared: first
///              materializes a private copy through the StateBufferPool
///              (the deferred "fork copy") and detaches from the shared
///              buffer. This is the ONLY point a CoW fork costs memory.
///   drop()   — detach; the last handle releases the buffer to the pool.
///
/// Thread contract: one handle is owned by one thread at a time (handles
/// move between threads through the executor's mutex-guarded deques, which
/// publish the buffer contents). Distinct handles to the same buffer may be
/// used concurrently: reads are safe because a shared buffer is never
/// written — any writer copies first, and the sole-owner in-place fast path
/// cannot race because a lone handle has no peers. The refcount uses the
/// shared_ptr protocol (relaxed increments, acq_rel decrement, acquire load
/// on the unique() fast path).
///
/// Telemetry: buffer_pool.cow_forks / cow_materializations / cow_inplace
/// count the three paths; the materialization deficit versus forks is the
/// work the CoW scheme eliminated.
class CowState {
 public:
  CowState() = default;
  CowState(const CowState&) = delete;
  CowState& operator=(const CowState&) = delete;
  CowState(CowState&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  CowState& operator=(CowState&& other) noexcept;

  /// Fallback teardown for abandoned handles (exception unwinding): frees
  /// the buffer outright when last, without pooling it. Normal paths call
  /// drop() so the buffer is recycled.
  ~CowState();

  /// Take ownership of `state` as a fresh, sole-owner buffer.
  static CowState adopt(StateVector&& state);

  /// A new handle sharing this buffer (refcount bump, no copy).
  CowState fork() const;

  bool valid() const { return block_ != nullptr; }

  /// True when this handle is the buffer's only owner (a write would be
  /// in-place). Answer is exact for the owner: peers can only disappear
  /// concurrently, never appear.
  bool unique() const;

  const StateVector& read() const;

  /// Mutable access, materializing a private copy via `pool`/`shard` when
  /// the buffer is shared. `copied` reports whether a new buffer was
  /// materialized; `released_peer` reports the rare race where every other
  /// handle dropped between the shared check and the detach, making this
  /// handle the old buffer's last owner (the old buffer went back to the
  /// pool — callers tracking live buffers must count it as a release).
  StateVector& mutate(StateBufferPool& pool, std::size_t shard,
                      bool* copied = nullptr, bool* released_peer = nullptr);

  /// Detach from the buffer; returns true when this was the last handle
  /// and the buffer was released to `pool`.
  bool drop(StateBufferPool& pool, std::size_t shard);

 private:
  struct Block;
  explicit CowState(Block* block) : block_(block) {}

  Block* block_ = nullptr;
};

}  // namespace rqsim
