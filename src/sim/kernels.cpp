#include "sim/kernels.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sim/kernel_engine.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

namespace {

// Per-gate-class dispatch counters ("kernel.ops_<class>"): which kernel
// families dominate a workload. Counted once per dispatch, independent of
// register size, so a profile separates "many cheap phase gates" from "few
// expensive generic mat2 applications". Namespace scope, not function-local
// statics: the first apply_gate call can come from several pool workers at
// once, and the guarded lazy initialization races with a concurrent
// Counter::add under TSan — before main() it is single-threaded.
telemetry::Counter pauli1q("kernel.ops_pauli1q");
telemetry::Counter h1q("kernel.ops_h");
telemetry::Counter phase1q("kernel.ops_phase1q");
telemetry::Counter mat2("kernel.ops_mat2");
telemetry::Counter cx("kernel.ops_cx");
telemetry::Counter diag2q("kernel.ops_diag2q");
telemetry::Counter swap2q("kernel.ops_swap");
telemetry::Counter ccx("kernel.ops_ccx");
telemetry::Counter fused_mat2("kernel.ops_fused_mat2");
telemetry::Counter fused_mat4("kernel.ops_fused_mat4");

void count_gate_dispatch(GateKind kind) {
  switch (kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      pauli1q.increment();
      return;
    case GateKind::H:
      h1q.increment();
      return;
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::P:
      phase1q.increment();
      return;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::U2:
    case GateKind::U3:
      mat2.increment();
      return;
    case GateKind::CX:
      cx.increment();
      return;
    case GateKind::CZ:
    case GateKind::CP:
      diag2q.increment();
      return;
    case GateKind::SWAP:
      swap2q.increment();
      return;
    case GateKind::CCX:
      ccx.increment();
      return;
  }
}

// The kernels operate on the amplitude array as interleaved doubles
// (re, im, re, im, …) with hand-expanded complex arithmetic: std::complex
// multiplication at -O* goes through NaN-propagation checks that block
// auto-vectorization, while the expanded form compiles to straight FMA
// streams. std::complex<double> guarantees this layout.
inline double* amp_data(StateVector& state) {
  return reinterpret_cast<double*>(state.amplitudes().data());
}

// a*b ± c with the floating-point contraction written out explicitly.
//
// The engine promises bitwise-neutral chunking (kernel_engine.hpp): a
// worker's sub-range must produce the same bits as the serial sweep. With
// implicit contraction (`-ffp-contract=fast`, and GCC's complex-multiply
// vector pattern, which emits vfmaddsub even under `-ffp-contract=off`)
// the compiler fuses mul+add differently in the vectorized loop body than
// in its scalar tail, so an amplitude's rounding depends on where the
// chunk boundary falls and threaded results drift from serial by an ulp.
// Spelling the fma in source pins one rounding per amplitude in every code
// path. On targets without hardware FMA nothing is contracted anywhere, so
// the plain two-rounding form is equally chunk-invariant (and avoids the
// libm software-fma call).
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
inline double mul_add(double a, double b, double c) {
  return __builtin_fma(a, b, c);
}
inline double mul_sub(double a, double b, double c) {
  return __builtin_fma(a, b, -c);
}
#else
inline double mul_add(double a, double b, double c) { return a * b + c; }
inline double mul_sub(double a, double b, double c) { return a * b - c; }
#endif

}  // namespace

void apply_mat2(StateVector& state, const Mat2& m, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_mat2: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  const std::uint64_t stride2 = std::uint64_t{2} << target;  // interleaved stride
  double* d = amp_data(state);
  const double m00r = m.at(0, 0).real(), m00i = m.at(0, 0).imag();
  const double m01r = m.at(0, 1).real(), m01i = m.at(0, 1).imag();
  const double m10r = m.at(1, 0).real(), m10i = m.at(1, 0).imag();
  const double m11r = m.at(1, 1).real(), m11i = m.at(1, 1).imag();
  kernel_parallel_for(half, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_target_runs(target, k0, k1,
                    [=](std::uint64_t base, std::uint64_t run, auto step) {
      // Indexed accesses off loop-invariant bases (not per-iteration
      // pointers) so the loads get a vector type and the loop vectorizes.
      double* p0 = d + 2 * base;
      double* p1 = p0 + stride2;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        const double a0r = p0[s * j], a0i = p0[s * j + 1];
        const double a1r = p1[s * j], a1i = p1[s * j + 1];
        p0[s * j] = mul_sub(m00r, a0r, m00i * a0i) +
                    mul_sub(m01r, a1r, m01i * a1i);
        p0[s * j + 1] = mul_add(m00r, a0i, m00i * a0r) +
                        mul_add(m01r, a1i, m01i * a1r);
        p1[s * j] = mul_sub(m10r, a0r, m10i * a0i) +
                    mul_sub(m11r, a1r, m11i * a1i);
        p1[s * j + 1] = mul_add(m10r, a0i, m10i * a0r) +
                        mul_add(m11r, a1i, m11i * a1r);
      }
    });
  });
}

void apply_mat4(StateVector& state, const Mat4& m, qubit_t q1, qubit_t q0) {
  RQSIM_CHECK(q1 < state.num_qubits() && q0 < state.num_qubits() && q1 != q0,
              "apply_mat4: bad operands");
  const qubit_t lo = q1 < q0 ? q1 : q0;
  const qubit_t hi = q1 < q0 ? q0 : q1;
  const std::uint64_t quarter = state.dim() >> 2;
  // Interleaved offsets of the four amplitudes of one quad. Matrix row and
  // column index is (bit(q1) << 1) | bit(q0).
  const std::uint64_t o1 = std::uint64_t{2} << q0;
  const std::uint64_t o2 = std::uint64_t{2} << q1;
  const std::uint64_t o3 = o1 + o2;
  double mr[16];
  double mi[16];
  for (std::size_t i = 0; i < 16; ++i) {
    mr[i] = m.m[i].real();
    mi[i] = m.m[i].imag();
  }
  double* d = amp_data(state);
  kernel_parallel_for(quarter, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_two_target_runs(lo, hi, k0, k1,
                        [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* b0 = d + 2 * base;
      double* b1 = b0 + o1;
      double* b2 = b0 + o2;
      double* b3 = b0 + o3;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        const double a0r = b0[s * j], a0i = b0[s * j + 1];
        const double a1r = b1[s * j], a1i = b1[s * j + 1];
        const double a2r = b2[s * j], a2i = b2[s * j + 1];
        const double a3r = b3[s * j], a3i = b3[s * j + 1];
        b0[s * j] = (mul_sub(mr[0], a0r, mi[0] * a0i) +
                     mul_sub(mr[1], a1r, mi[1] * a1i)) +
                    (mul_sub(mr[2], a2r, mi[2] * a2i) +
                     mul_sub(mr[3], a3r, mi[3] * a3i));
        b0[s * j + 1] = (mul_add(mr[0], a0i, mi[0] * a0r) +
                         mul_add(mr[1], a1i, mi[1] * a1r)) +
                        (mul_add(mr[2], a2i, mi[2] * a2r) +
                         mul_add(mr[3], a3i, mi[3] * a3r));
        b1[s * j] = (mul_sub(mr[4], a0r, mi[4] * a0i) +
                     mul_sub(mr[5], a1r, mi[5] * a1i)) +
                    (mul_sub(mr[6], a2r, mi[6] * a2i) +
                     mul_sub(mr[7], a3r, mi[7] * a3i));
        b1[s * j + 1] = (mul_add(mr[4], a0i, mi[4] * a0r) +
                         mul_add(mr[5], a1i, mi[5] * a1r)) +
                        (mul_add(mr[6], a2i, mi[6] * a2r) +
                         mul_add(mr[7], a3i, mi[7] * a3r));
        b2[s * j] = (mul_sub(mr[8], a0r, mi[8] * a0i) +
                     mul_sub(mr[9], a1r, mi[9] * a1i)) +
                    (mul_sub(mr[10], a2r, mi[10] * a2i) +
                     mul_sub(mr[11], a3r, mi[11] * a3i));
        b2[s * j + 1] = (mul_add(mr[8], a0i, mi[8] * a0r) +
                         mul_add(mr[9], a1i, mi[9] * a1r)) +
                        (mul_add(mr[10], a2i, mi[10] * a2r) +
                         mul_add(mr[11], a3i, mi[11] * a3r));
        b3[s * j] = (mul_sub(mr[12], a0r, mi[12] * a0i) +
                     mul_sub(mr[13], a1r, mi[13] * a1i)) +
                    (mul_sub(mr[14], a2r, mi[14] * a2i) +
                     mul_sub(mr[15], a3r, mi[15] * a3i));
        b3[s * j + 1] = (mul_add(mr[12], a0i, mi[12] * a0r) +
                         mul_add(mr[13], a1i, mi[13] * a1r)) +
                        (mul_add(mr[14], a2i, mi[14] * a2r) +
                         mul_add(mr[15], a3i, mi[15] * a3r));
      }
    });
  });
}

void apply_x(StateVector& state, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_x: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  const std::uint64_t stride2 = std::uint64_t{2} << target;
  double* d = amp_data(state);
  kernel_parallel_for(half, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_target_runs(target, k0, k1,
                    [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p0 = d + 2 * base;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* q0 = p0 + j * s;
        double* q1 = q0 + stride2;
        const double r = q0[0], i = q0[1];
        q0[0] = q1[0];
        q0[1] = q1[1];
        q1[0] = r;
        q1[1] = i;
      }
    });
  });
}

void apply_y(StateVector& state, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_y: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  const std::uint64_t stride2 = std::uint64_t{2} << target;
  double* d = amp_data(state);
  // |0⟩ ↦ i|1⟩, |1⟩ ↦ -i|0⟩: new a0 = -i*a1 = (a1i, -a1r); new a1 = i*a0.
  kernel_parallel_for(half, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_target_runs(target, k0, k1,
                    [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p0 = d + 2 * base;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* q0 = p0 + j * s;
        double* q1 = q0 + stride2;
        const double a0r = q0[0], a0i = q0[1];
        q0[0] = q1[1];
        q0[1] = -q1[0];
        q1[0] = -a0i;
        q1[1] = a0r;
      }
    });
  });
}

void apply_z(StateVector& state, qubit_t target) {
  apply_phase(state, target, cplx(-1.0, 0.0));
}

void apply_h(StateVector& state, qubit_t target) {
  static const Mat2 kHadamard = [] {
    Mat2 h;
    const double inv_sqrt2 = 0.7071067811865475244;
    h.at(0, 0) = inv_sqrt2;
    h.at(0, 1) = inv_sqrt2;
    h.at(1, 0) = inv_sqrt2;
    h.at(1, 1) = -inv_sqrt2;
    return h;
  }();
  apply_mat2(state, kHadamard, target);
}

void apply_phase(StateVector& state, qubit_t target, cplx phase) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_phase: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  const std::uint64_t stride2 = std::uint64_t{2} << target;
  const double pr = phase.real();
  const double pi = phase.imag();
  double* d = amp_data(state);
  kernel_parallel_for(half, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_target_runs(target, k0, k1,
                    [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p1 = d + 2 * base + stride2;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* q1 = p1 + j * s;
        const double ar = q1[0], ai = q1[1];
        q1[0] = mul_sub(pr, ar, pi * ai);
        q1[1] = mul_add(pr, ai, pi * ar);
      }
    });
  });
}

void apply_cx(StateVector& state, qubit_t control, qubit_t target) {
  RQSIM_CHECK(control < state.num_qubits() && target < state.num_qubits() &&
                  control != target,
              "apply_cx: bad operands");
  const qubit_t lo = control < target ? control : target;
  const qubit_t hi = control < target ? target : control;
  const std::uint64_t quarter = state.dim() >> 2;
  const std::uint64_t coff = std::uint64_t{2} << control;
  const std::uint64_t toff = std::uint64_t{2} << target;
  double* d = amp_data(state);
  kernel_parallel_for(quarter, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_two_target_runs(lo, hi, k0, k1,
                        [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p0 = d + 2 * base + coff;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* q0 = p0 + j * s;
        double* q1 = q0 + toff;
        const double r = q0[0], i = q0[1];
        q0[0] = q1[0];
        q0[1] = q1[1];
        q1[0] = r;
        q1[1] = i;
      }
    });
  });
}

void apply_cz(StateVector& state, qubit_t a, qubit_t b) {
  apply_cphase(state, a, b, cplx(-1.0, 0.0));
}

void apply_cphase(StateVector& state, qubit_t a, qubit_t b, cplx phase) {
  RQSIM_CHECK(a < state.num_qubits() && b < state.num_qubits() && a != b,
              "apply_cphase: bad operands");
  const qubit_t lo = a < b ? a : b;
  const qubit_t hi = a < b ? b : a;
  const std::uint64_t quarter = state.dim() >> 2;
  const std::uint64_t both = (std::uint64_t{2} << a) + (std::uint64_t{2} << b);
  const double pr = phase.real();
  const double pi = phase.imag();
  double* d = amp_data(state);
  kernel_parallel_for(quarter, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_two_target_runs(lo, hi, k0, k1,
                        [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p = d + 2 * base + both;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* q = p + j * s;
        const double ar = q[0], ai = q[1];
        q[0] = mul_sub(pr, ar, pi * ai);
        q[1] = mul_add(pr, ai, pi * ar);
      }
    });
  });
}

void apply_swap(StateVector& state, qubit_t a, qubit_t b) {
  RQSIM_CHECK(a < state.num_qubits() && b < state.num_qubits() && a != b,
              "apply_swap: bad operands");
  const qubit_t lo = a < b ? a : b;
  const qubit_t hi = a < b ? b : a;
  const std::uint64_t quarter = state.dim() >> 2;
  const std::uint64_t aoff = std::uint64_t{2} << a;
  const std::uint64_t boff = std::uint64_t{2} << b;
  double* d = amp_data(state);
  kernel_parallel_for(quarter, state.num_qubits(), [=](std::uint64_t k0, std::uint64_t k1) {
    for_two_target_runs(lo, hi, k0, k1,
                        [=](std::uint64_t base, std::uint64_t run, auto step) {
      double* p = d + 2 * base;
      constexpr std::uint64_t s = 2 * decltype(step)::value;
      for (std::uint64_t j = 0; j < run; ++j) {
        double* qa = p + j * s + aoff;
        double* qb = p + j * s + boff;
        const double r = qa[0], i = qa[1];
        qa[0] = qb[0];
        qa[1] = qb[1];
        qb[0] = r;
        qb[1] = i;
      }
    });
  });
}

void apply_ccx(StateVector& state, qubit_t c1, qubit_t c2, qubit_t target) {
  RQSIM_CHECK(c1 < state.num_qubits() && c2 < state.num_qubits() &&
                  target < state.num_qubits() && c1 != c2 && c1 != target &&
                  c2 != target,
              "apply_ccx: bad operands");
  // Iterate the dim/8 indices with all three operand bits cleared, then set
  // both control bits — touches exactly the amplitudes that move.
  unsigned b0 = c1, b1 = c2, b2 = target;
  if (b0 > b1) std::swap(b0, b1);
  if (b1 > b2) std::swap(b1, b2);
  if (b0 > b1) std::swap(b0, b1);
  const std::uint64_t eighth = state.dim() >> 3;
  const std::uint64_t cbits = (std::uint64_t{1} << c1) | (std::uint64_t{1} << c2);
  const std::uint64_t tbit = std::uint64_t{1} << target;
  auto& amps = state.amplitudes();
  kernel_parallel_for(eighth, state.num_qubits(), [&](std::uint64_t k0, std::uint64_t k1) {
    for (std::uint64_t k = k0; k < k1; ++k) {
      const std::uint64_t i0 = insert_three_zero_bits(k, b0, b1, b2) | cbits;
      std::swap(amps[i0], amps[i0 | tbit]);
    }
  });
}

void apply_gate(StateVector& state, const Gate& gate) {
  static const cplx kSPhase(0.0, 1.0);
  static const cplx kSdgPhase(0.0, -1.0);
  static const cplx kTPhase = std::exp(cplx(0.0, kPi / 4.0));
  static const cplx kTdgPhase = std::exp(cplx(0.0, -kPi / 4.0));
  count_gate_dispatch(gate.kind);
  switch (gate.kind) {
    case GateKind::X:
      apply_x(state, gate.qubits[0]);
      return;
    case GateKind::Y:
      apply_y(state, gate.qubits[0]);
      return;
    case GateKind::Z:
      apply_z(state, gate.qubits[0]);
      return;
    case GateKind::H:
      apply_h(state, gate.qubits[0]);
      return;
    case GateKind::S:
      apply_phase(state, gate.qubits[0], kSPhase);
      return;
    case GateKind::Sdg:
      apply_phase(state, gate.qubits[0], kSdgPhase);
      return;
    case GateKind::T:
      apply_phase(state, gate.qubits[0], kTPhase);
      return;
    case GateKind::Tdg:
      apply_phase(state, gate.qubits[0], kTdgPhase);
      return;
    case GateKind::P:
      apply_phase(state, gate.qubits[0], std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::U2:
    case GateKind::U3:
      apply_mat2(state, gate_matrix1(gate), gate.qubits[0]);
      return;
    case GateKind::CX:
      apply_cx(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CZ:
      apply_cz(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CP:
      apply_cphase(state, gate.qubits[0], gate.qubits[1],
                   std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::SWAP:
      apply_swap(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CCX:
      apply_ccx(state, gate.qubits[0], gate.qubits[1], gate.qubits[2]);
      return;
  }
  RQSIM_CHECK(false, "apply_gate: unhandled gate kind");
}

void apply_fused(StateVector& state, const FusedProgram& program) {
  for (const FusedOp& op : program.ops) {
    switch (op.kind) {
      case FusedOp::Kind::kGate:
        apply_gate(state, op.gate);
        break;
      case FusedOp::Kind::kMat2:
        fused_mat2.increment();
        apply_mat2(state, op.m2, op.q_lo);
        break;
      case FusedOp::Kind::kMat4:
        fused_mat4.increment();
        apply_mat4(state, op.m4, op.q_hi, op.q_lo);
        break;
    }
  }
}

void apply_pauli(StateVector& state, Pauli p, qubit_t target) {
  switch (p) {
    case Pauli::I:
      return;
    case Pauli::X:
      apply_x(state, target);
      return;
    case Pauli::Y:
      apply_y(state, target);
      return;
    case Pauli::Z:
      apply_z(state, target);
      return;
  }
}

void apply_pauli_pair(StateVector& state, PauliPair pair, qubit_t q1, qubit_t q0) {
  apply_pauli(state, pair.p1, q1);
  apply_pauli(state, pair.p0, q0);
}

}  // namespace rqsim
