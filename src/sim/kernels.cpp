#include "sim/kernels.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

void apply_mat2(StateVector& state, const Mat2& m, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_mat2: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  const cplx m00 = m.at(0, 0);
  const cplx m01 = m.at(0, 1);
  const cplx m10 = m.at(1, 0);
  const cplx m11 = m.at(1, 1);
  auto& amps = state.amplitudes();
  for (std::uint64_t k = 0; k < half; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, target);
    const std::uint64_t i1 = i0 | (std::uint64_t{1} << target);
    const cplx a0 = amps[i0];
    const cplx a1 = amps[i1];
    amps[i0] = m00 * a0 + m01 * a1;
    amps[i1] = m10 * a0 + m11 * a1;
  }
}

void apply_mat4(StateVector& state, const Mat4& m, qubit_t q1, qubit_t q0) {
  RQSIM_CHECK(q1 < state.num_qubits() && q0 < state.num_qubits() && q1 != q0,
              "apply_mat4: bad operands");
  const qubit_t lo = q1 < q0 ? q1 : q0;
  const qubit_t hi = q1 < q0 ? q0 : q1;
  const std::uint64_t quarter = state.dim() >> 2;
  auto& amps = state.amplitudes();
  const std::uint64_t bit1 = std::uint64_t{1} << q1;
  const std::uint64_t bit0 = std::uint64_t{1} << q0;
  for (std::uint64_t k = 0; k < quarter; ++k) {
    const std::uint64_t base = insert_two_zero_bits(k, lo, hi);
    const std::uint64_t i00 = base;
    const std::uint64_t i01 = base | bit0;
    const std::uint64_t i10 = base | bit1;
    const std::uint64_t i11 = base | bit0 | bit1;
    const cplx a00 = amps[i00];
    const cplx a01 = amps[i01];
    const cplx a10 = amps[i10];
    const cplx a11 = amps[i11];
    amps[i00] = m.at(0, 0) * a00 + m.at(0, 1) * a01 + m.at(0, 2) * a10 + m.at(0, 3) * a11;
    amps[i01] = m.at(1, 0) * a00 + m.at(1, 1) * a01 + m.at(1, 2) * a10 + m.at(1, 3) * a11;
    amps[i10] = m.at(2, 0) * a00 + m.at(2, 1) * a01 + m.at(2, 2) * a10 + m.at(2, 3) * a11;
    amps[i11] = m.at(3, 0) * a00 + m.at(3, 1) * a01 + m.at(3, 2) * a10 + m.at(3, 3) * a11;
  }
}

void apply_x(StateVector& state, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_x: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  auto& amps = state.amplitudes();
  for (std::uint64_t k = 0; k < half; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, target);
    const std::uint64_t i1 = i0 | (std::uint64_t{1} << target);
    std::swap(amps[i0], amps[i1]);
  }
}

void apply_y(StateVector& state, qubit_t target) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_y: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  auto& amps = state.amplitudes();
  const cplx i_unit(0.0, 1.0);
  for (std::uint64_t k = 0; k < half; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, target);
    const std::uint64_t i1 = i0 | (std::uint64_t{1} << target);
    const cplx a0 = amps[i0];
    const cplx a1 = amps[i1];
    amps[i0] = -i_unit * a1;
    amps[i1] = i_unit * a0;
  }
}

void apply_z(StateVector& state, qubit_t target) {
  apply_phase(state, target, cplx(-1.0, 0.0));
}

void apply_h(StateVector& state, qubit_t target) {
  Mat2 h;
  const double inv_sqrt2 = 0.7071067811865475244;
  h.at(0, 0) = inv_sqrt2;
  h.at(0, 1) = inv_sqrt2;
  h.at(1, 0) = inv_sqrt2;
  h.at(1, 1) = -inv_sqrt2;
  apply_mat2(state, h, target);
}

void apply_phase(StateVector& state, qubit_t target, cplx phase) {
  RQSIM_CHECK(target < state.num_qubits(), "apply_phase: target out of range");
  const std::uint64_t half = state.dim() >> 1;
  auto& amps = state.amplitudes();
  for (std::uint64_t k = 0; k < half; ++k) {
    const std::uint64_t i1 = insert_zero_bit(k, target) | (std::uint64_t{1} << target);
    amps[i1] *= phase;
  }
}

void apply_cx(StateVector& state, qubit_t control, qubit_t target) {
  RQSIM_CHECK(control < state.num_qubits() && target < state.num_qubits() &&
                  control != target,
              "apply_cx: bad operands");
  const qubit_t lo = control < target ? control : target;
  const qubit_t hi = control < target ? target : control;
  const std::uint64_t quarter = state.dim() >> 2;
  auto& amps = state.amplitudes();
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  for (std::uint64_t k = 0; k < quarter; ++k) {
    const std::uint64_t base = insert_two_zero_bits(k, lo, hi) | cbit;
    std::swap(amps[base], amps[base | tbit]);
  }
}

void apply_cz(StateVector& state, qubit_t a, qubit_t b) {
  apply_cphase(state, a, b, cplx(-1.0, 0.0));
}

void apply_cphase(StateVector& state, qubit_t a, qubit_t b, cplx phase) {
  RQSIM_CHECK(a < state.num_qubits() && b < state.num_qubits() && a != b,
              "apply_cphase: bad operands");
  const qubit_t lo = a < b ? a : b;
  const qubit_t hi = a < b ? b : a;
  const std::uint64_t quarter = state.dim() >> 2;
  auto& amps = state.amplitudes();
  const std::uint64_t both = (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
  for (std::uint64_t k = 0; k < quarter; ++k) {
    amps[insert_two_zero_bits(k, lo, hi) | both] *= phase;
  }
}

void apply_swap(StateVector& state, qubit_t a, qubit_t b) {
  RQSIM_CHECK(a < state.num_qubits() && b < state.num_qubits() && a != b,
              "apply_swap: bad operands");
  const qubit_t lo = a < b ? a : b;
  const qubit_t hi = a < b ? b : a;
  const std::uint64_t quarter = state.dim() >> 2;
  auto& amps = state.amplitudes();
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  for (std::uint64_t k = 0; k < quarter; ++k) {
    const std::uint64_t base = insert_two_zero_bits(k, lo, hi);
    std::swap(amps[base | abit], amps[base | bbit]);
  }
}

void apply_ccx(StateVector& state, qubit_t c1, qubit_t c2, qubit_t target) {
  RQSIM_CHECK(c1 < state.num_qubits() && c2 < state.num_qubits() &&
                  target < state.num_qubits() && c1 != c2 && c1 != target &&
                  c2 != target,
              "apply_ccx: bad operands");
  auto& amps = state.amplitudes();
  const std::uint64_t c1bit = std::uint64_t{1} << c1;
  const std::uint64_t c2bit = std::uint64_t{1} << c2;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  const std::uint64_t dim = state.dim();
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & c1bit) && (i & c2bit) && !(i & tbit)) {
      std::swap(amps[i], amps[i | tbit]);
    }
  }
}

void apply_gate(StateVector& state, const Gate& gate) {
  switch (gate.kind) {
    case GateKind::X:
      apply_x(state, gate.qubits[0]);
      return;
    case GateKind::Y:
      apply_y(state, gate.qubits[0]);
      return;
    case GateKind::Z:
      apply_z(state, gate.qubits[0]);
      return;
    case GateKind::H:
      apply_h(state, gate.qubits[0]);
      return;
    case GateKind::S:
      apply_phase(state, gate.qubits[0], cplx(0.0, 1.0));
      return;
    case GateKind::Sdg:
      apply_phase(state, gate.qubits[0], cplx(0.0, -1.0));
      return;
    case GateKind::T:
      apply_phase(state, gate.qubits[0], std::exp(cplx(0.0, kPi / 4.0)));
      return;
    case GateKind::Tdg:
      apply_phase(state, gate.qubits[0], std::exp(cplx(0.0, -kPi / 4.0)));
      return;
    case GateKind::P:
      apply_phase(state, gate.qubits[0], std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::U2:
    case GateKind::U3:
      apply_mat2(state, gate_matrix1(gate), gate.qubits[0]);
      return;
    case GateKind::CX:
      apply_cx(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CZ:
      apply_cz(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CP:
      apply_cphase(state, gate.qubits[0], gate.qubits[1],
                   std::exp(cplx(0.0, gate.params[0])));
      return;
    case GateKind::SWAP:
      apply_swap(state, gate.qubits[0], gate.qubits[1]);
      return;
    case GateKind::CCX:
      apply_ccx(state, gate.qubits[0], gate.qubits[1], gate.qubits[2]);
      return;
  }
  RQSIM_CHECK(false, "apply_gate: unhandled gate kind");
}

void apply_pauli(StateVector& state, Pauli p, qubit_t target) {
  switch (p) {
    case Pauli::I:
      return;
    case Pauli::X:
      apply_x(state, target);
      return;
    case Pauli::Y:
      apply_y(state, target);
      return;
    case Pauli::Z:
      apply_z(state, target);
      return;
  }
}

void apply_pauli_pair(StateVector& state, PauliPair pair, qubit_t q1, qubit_t q0) {
  apply_pauli(state, pair.p1, q1);
  apply_pauli(state, pair.p0, q0);
}

}  // namespace rqsim
