#include "sim/buffer_pool.hpp"

namespace rqsim {

StateVector StateBufferPool::acquire_copy(const StateVector& src) {
  if (!free_.empty()) {
    std::vector<cplx> buffer = std::move(free_.back());
    free_.pop_back();
    ++reuses_;
    // Vector assignment reuses the existing allocation when capacity
    // suffices (checkpoints of one run are all the same size).
    buffer = src.amplitudes();
    return StateVector::from_buffer(src.num_qubits(), std::move(buffer));
  }
  ++allocs_;
  return StateVector::from_buffer(src.num_qubits(), src.amplitudes());
}

void StateBufferPool::release(StateVector&& state) {
  if (free_.size() >= max_pooled_ || state.dim() == 0) {
    return;
  }
  free_.push_back(state.take_buffer());
}

void StateBufferPool::clear() { free_.clear(); }

}  // namespace rqsim
