#include "sim/buffer_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

namespace {
// Pool traffic split by path: shard hits are the lock-free fast path,
// global hits paid one mutex, fresh allocs paged in new memory. The gauges
// track the most buffers ever parked in one shard / the overflow list.
telemetry::Counter g_acquires("buffer_pool.acquires");
telemetry::Counter g_shard_hits("buffer_pool.shard_hits");
telemetry::Counter g_global_hits("buffer_pool.global_hits");
telemetry::Counter g_fresh_allocs("buffer_pool.fresh_allocs");
telemetry::Counter g_releases("buffer_pool.releases");
telemetry::MaxGauge g_shard_high_water("buffer_pool.shard_high_water");
telemetry::MaxGauge g_global_high_water("buffer_pool.global_high_water");
}  // namespace

StateBufferPool::StateBufferPool(std::size_t max_pooled, std::size_t num_shards)
    : max_pooled_(max_pooled),
      per_shard_cap_(num_shards == 0 ? max_pooled
                                     : std::max<std::size_t>(1, max_pooled / num_shards)),
      shards_(std::max<std::size_t>(1, num_shards)) {}

StateVector StateBufferPool::acquire_copy(const StateVector& src, std::size_t shard) {
  RQSIM_CHECK(shard < shards_.size(), "StateBufferPool: shard index out of range");
  g_acquires.increment();
  std::vector<std::vector<cplx>>& local = shards_[shard].free;
  if (!local.empty()) {
    // Hot path: owner-thread shard list, no synchronization of any kind.
    std::vector<cplx> buffer = std::move(local.back());
    local.pop_back();
    reuses_.fetch_add(1, std::memory_order_relaxed);
    g_shard_hits.increment();
    // Vector assignment reuses the existing allocation when capacity
    // suffices (checkpoints of one run are all the same size).
    buffer = src.amplitudes();
    return StateVector::from_buffer(src.num_qubits(), std::move(buffer));
  }
  {
    std::lock_guard<std::mutex> lock(global_mutex_);
    if (!global_free_.empty()) {
      std::vector<cplx> buffer = std::move(global_free_.back());
      global_free_.pop_back();
      reuses_.fetch_add(1, std::memory_order_relaxed);
      g_global_hits.increment();
      buffer = src.amplitudes();
      return StateVector::from_buffer(src.num_qubits(), std::move(buffer));
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  g_fresh_allocs.increment();
  return StateVector::from_buffer(src.num_qubits(), src.amplitudes());
}

void StateBufferPool::release(StateVector&& state, std::size_t shard) {
  RQSIM_CHECK(shard < shards_.size(), "StateBufferPool: shard index out of range");
  if (state.dim() == 0) {
    return;
  }
  g_releases.increment();
  std::vector<std::vector<cplx>>& local = shards_[shard].free;
  if (local.size() < per_shard_cap_) {
    local.push_back(state.take_buffer());
    g_shard_high_water.record(local.size());
    return;
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  // The per-shard caps already bound the shard lists; the overflow list
  // absorbs the remainder of the total budget.
  const std::size_t shard_budget = per_shard_cap_ * shards_.size();
  if (shard_budget < max_pooled_ &&
      global_free_.size() < max_pooled_ - shard_budget) {
    global_free_.push_back(state.take_buffer());
    g_global_high_water.record(global_free_.size());
  }
}

void StateBufferPool::clear() {
  for (Shard& shard : shards_) {
    shard.free.clear();
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  global_free_.clear();
}

std::size_t StateBufferPool::pooled() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.free.size();
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  return total + global_free_.size();
}

}  // namespace rqsim
