#include "sim/buffer_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

namespace {
// Pool traffic split by path: shard hits are the lock-free fast path,
// global hits paid one mutex, fresh allocs paged in new memory. The gauges
// track the most buffers ever parked in one shard / the overflow list.
telemetry::Counter g_acquires("buffer_pool.acquires");
telemetry::Counter g_shard_hits("buffer_pool.shard_hits");
telemetry::Counter g_global_hits("buffer_pool.global_hits");
telemetry::Counter g_fresh_allocs("buffer_pool.fresh_allocs");
telemetry::Counter g_releases("buffer_pool.releases");
telemetry::MaxGauge g_shard_high_water("buffer_pool.shard_high_water");
telemetry::MaxGauge g_global_high_water("buffer_pool.global_high_water");
telemetry::Counter g_prewarmed("buffer_pool.prewarmed");
// CoW checkpoint traffic: forks are refcount bumps, materializations are
// the deferred 2^n copies actually paid, in-place writes are sole-owner
// mutations that skipped the copy entirely. cow_forks - cow_materializations
// is the number of full state copies the CoW scheme eliminated.
telemetry::Counter g_cow_forks("buffer_pool.cow_forks");
telemetry::Counter g_cow_materializations("buffer_pool.cow_materializations");
telemetry::Counter g_cow_inplace("buffer_pool.cow_inplace");
}  // namespace

StateBufferPool::StateBufferPool(std::size_t max_pooled, std::size_t num_shards)
    : max_pooled_(max_pooled),
      per_shard_cap_(num_shards == 0 ? max_pooled
                                     : std::max<std::size_t>(1, max_pooled / num_shards)),
      shards_(std::max<std::size_t>(1, num_shards)) {}

StateVector StateBufferPool::acquire_copy(const StateVector& src, std::size_t shard) {
  RQSIM_CHECK(shard < shards_.size(), "StateBufferPool: shard index out of range");
  g_acquires.increment();
  std::vector<std::vector<cplx>>& local = shards_[shard].free;
  if (!local.empty()) {
    // Hot path: owner-thread shard list, no synchronization of any kind.
    std::vector<cplx> buffer = std::move(local.back());
    local.pop_back();
    reuses_.fetch_add(1, std::memory_order_relaxed);
    g_shard_hits.increment();
    // Vector assignment reuses the existing allocation when capacity
    // suffices (checkpoints of one run are all the same size).
    buffer = src.amplitudes();
    return StateVector::from_buffer(src.num_qubits(), std::move(buffer));
  }
  {
    std::lock_guard<std::mutex> lock(global_mutex_);
    if (!global_free_.empty()) {
      std::vector<cplx> buffer = std::move(global_free_.back());
      global_free_.pop_back();
      reuses_.fetch_add(1, std::memory_order_relaxed);
      g_global_hits.increment();
      buffer = src.amplitudes();
      return StateVector::from_buffer(src.num_qubits(), std::move(buffer));
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  g_fresh_allocs.increment();
  return StateVector::from_buffer(src.num_qubits(), src.amplitudes());
}

void StateBufferPool::release(StateVector&& state, std::size_t shard) {
  RQSIM_CHECK(shard < shards_.size(), "StateBufferPool: shard index out of range");
  if (state.dim() == 0) {
    return;
  }
  g_releases.increment();
  std::vector<std::vector<cplx>>& local = shards_[shard].free;
  if (local.size() < per_shard_cap_) {
    local.push_back(state.take_buffer());
    g_shard_high_water.record(local.size());
    return;
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  // The per-shard caps already bound the shard lists; the overflow list
  // absorbs the remainder of the total budget.
  const std::size_t shard_budget = per_shard_cap_ * shards_.size();
  if (shard_budget < max_pooled_ &&
      global_free_.size() < max_pooled_ - shard_budget) {
    global_free_.push_back(state.take_buffer());
    g_global_high_water.record(global_free_.size());
  }
}

void StateBufferPool::prewarm(unsigned num_qubits, std::size_t per_shard) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  const std::size_t target = std::min(per_shard, per_shard_cap_);
  for (Shard& shard : shards_) {
    while (shard.free.size() < target) {
      // Zero-filling touches every page now, on the setup thread, which is
      // the point: the workers' first acquires find mapped memory.
      shard.free.emplace_back(dim);
      prewarmed_.fetch_add(1, std::memory_order_relaxed);
      g_prewarmed.increment();
    }
  }
}

void StateBufferPool::clear() {
  for (Shard& shard : shards_) {
    shard.free.clear();
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  global_free_.clear();
}

std::size_t StateBufferPool::pooled() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.free.size();
  }
  std::lock_guard<std::mutex> lock(global_mutex_);
  return total + global_free_.size();
}

// --------------------------------------------------------------------------
// CowState

struct CowState::Block {
  StateVector state;
  std::atomic<std::size_t> refs{1};
};

CowState& CowState::operator=(CowState&& other) noexcept {
  if (this != &other) {
    // Assigning over an engaged handle has no pool to recycle into; free
    // outright, exactly like the destructor's abandonment path.
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete block_;
    }
    block_ = other.block_;
    other.block_ = nullptr;
  }
  return *this;
}

CowState::~CowState() {
  if (block_ != nullptr &&
      block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete block_;
  }
}

CowState CowState::adopt(StateVector&& state) {
  Block* block = new Block;
  block->state = std::move(state);
  return CowState(block);
}

CowState CowState::fork() const {
  RQSIM_CHECK(block_ != nullptr, "CowState::fork: empty handle");
  block_->refs.fetch_add(1, std::memory_order_relaxed);
  g_cow_forks.increment();
  return CowState(block_);
}

bool CowState::unique() const {
  return block_ != nullptr &&
         block_->refs.load(std::memory_order_acquire) == 1;
}

const StateVector& CowState::read() const {
  RQSIM_CHECK(block_ != nullptr, "CowState::read: empty handle");
  return block_->state;
}

StateVector& CowState::mutate(StateBufferPool& pool, std::size_t shard,
                              bool* copied, bool* released_peer) {
  RQSIM_CHECK(block_ != nullptr, "CowState::mutate: empty handle");
  if (copied != nullptr) {
    *copied = false;
  }
  if (released_peer != nullptr) {
    *released_peer = false;
  }
  // Sole owner: in-place. The acquire load pairs with the release half of
  // peers' detaching fetch_sub, so a buffer observed unshared is fully
  // synchronized (peers never write a shared buffer, but their detach must
  // be ordered before our write).
  if (block_->refs.load(std::memory_order_acquire) == 1) {
    g_cow_inplace.increment();
    return block_->state;
  }
  // Shared: materialize a private copy through the pool, then detach from
  // the shared buffer.
  Block* fresh = new Block;
  fresh->state = pool.acquire_copy(block_->state, shard);
  g_cow_materializations.increment();
  if (copied != nullptr) {
    *copied = true;
  }
  Block* old = block_;
  block_ = fresh;
  if (old->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Every peer dropped between the shared check and this detach: the copy
    // was redundant but safe, and the old buffer is ours to recycle.
    pool.release(std::move(old->state), shard);
    delete old;
    if (released_peer != nullptr) {
      *released_peer = true;
    }
  }
  return block_->state;
}

bool CowState::drop(StateBufferPool& pool, std::size_t shard) {
  if (block_ == nullptr) {
    return false;
  }
  Block* block = block_;
  block_ = nullptr;
  if (block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool.release(std::move(block->state), shard);
    delete block;
    return true;
  }
  return false;
}

}  // namespace rqsim
