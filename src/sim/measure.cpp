#include "sim/measure.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

std::vector<double> measurement_probabilities(const StateVector& state,
                                              const std::vector<qubit_t>& measured_qubits) {
  RQSIM_CHECK(!measured_qubits.empty(), "measurement_probabilities: no qubits");
  RQSIM_CHECK(measured_qubits.size() <= 30, "measurement_probabilities: too many qubits");
  for (qubit_t q : measured_qubits) {
    RQSIM_CHECK(q < state.num_qubits(), "measurement_probabilities: qubit out of range");
  }
  std::vector<double> probs(pow2(static_cast<unsigned>(measured_qubits.size())), 0.0);
  const std::uint64_t dim = state.dim();
  for (std::uint64_t i = 0; i < dim; ++i) {
    const double p = std::norm(state[i]);
    if (p == 0.0) {
      continue;
    }
    std::uint64_t key = 0;
    for (std::size_t k = 0; k < measured_qubits.size(); ++k) {
      key |= static_cast<std::uint64_t>(get_bit(i, measured_qubits[k])) << k;
    }
    probs[key] += p;
  }
  return probs;
}

std::uint64_t sample_outcome(const std::vector<double>& probs, Rng& rng) {
  RQSIM_CHECK(!probs.empty(), "sample_outcome: empty distribution");
  double r = rng.uniform();
  for (std::size_t i = 0; i + 1 < probs.size(); ++i) {
    if (r < probs[i]) {
      return i;
    }
    r -= probs[i];
  }
  return probs.size() - 1;
}

std::uint64_t sample_outcome_permuted(const std::vector<double>& probs,
                                      std::uint64_t flip, Rng& rng) {
  RQSIM_CHECK(!probs.empty(), "sample_outcome_permuted: empty distribution");
  RQSIM_CHECK(flip < probs.size(), "sample_outcome_permuted: flip out of range");
  double r = rng.uniform();
  for (std::size_t i = 0; i + 1 < probs.size(); ++i) {
    const double p = probs[i ^ flip];
    if (r < p) {
      return i;
    }
    r -= p;
  }
  return probs.size() - 1;
}

std::uint64_t sample_state(const StateVector& state,
                           const std::vector<qubit_t>& measured_qubits, Rng& rng) {
  return sample_outcome(measurement_probabilities(state, measured_qubits), rng);
}

double total_variation_distance(const OutcomeHistogram& a, const OutcomeHistogram& b) {
  std::uint64_t total_a = 0;
  std::uint64_t total_b = 0;
  for (const auto& [key, count] : a) {
    (void)key;
    total_a += count;
  }
  for (const auto& [key, count] : b) {
    (void)key;
    total_b += count;
  }
  RQSIM_CHECK(total_a > 0 && total_b > 0, "total_variation_distance: empty histogram");
  double acc = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      acc += static_cast<double>(ia->second) / static_cast<double>(total_a);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      acc += static_cast<double>(ib->second) / static_cast<double>(total_b);
      ++ib;
    } else {
      acc += std::abs(static_cast<double>(ia->second) / static_cast<double>(total_a) -
                      static_cast<double>(ib->second) / static_cast<double>(total_b));
      ++ia;
      ++ib;
    }
  }
  return acc / 2.0;
}

}  // namespace rqsim
