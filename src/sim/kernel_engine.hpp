// Execution engine for the statevector gate kernels: a process-wide
// configuration (intra-statevector threading), a small persistent worker
// pool, and the blocked index-iteration helpers shared by every kernel.
//
// Two orthogonal parallelism axes exist in this library:
//   - per-trial chunking (sched/parallel.*): many schedulers, one thread
//     each, good when there are many trials of a modest-sized register;
//   - intra-statevector chunking (this module): one gate application is
//     split across worker threads, good for few but large registers.
// The engine arbitrates between them with a try-lock: if the worker pool is
// already busy (e.g. several trial workers apply gates concurrently), a
// kernel silently runs serially on the calling thread, so combining both
// axes is always safe and never deadlocks.
//
// The blocked iteration helpers replace the per-amplitude
// `insert_zero_bit` index transform of the original kernels with two-level
// loops: an outer walk over aligned blocks and a contiguous (or
// constant-stride) inner run the compiler can auto-vectorize. Partitioning
// for the thread pool happens in "pair index" space, so any sub-range
// [k0, k1) of a kernel's index space can be executed independently and
// bitwise-identically to the serial sweep.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "common/bits.hpp"

namespace rqsim {

struct KernelConfig {
  /// Worker threads for a single gate application; <= 1 disables the pool.
  std::size_t num_threads = 1;

  /// Minimum register size (in qubits) before a kernel goes parallel;
  /// below this the dispatch overhead dominates.
  unsigned parallel_threshold_qubits = 18;
};

/// Install a new engine configuration (resizes the worker pool).
void set_kernel_config(const KernelConfig& config);

/// Current engine configuration.
KernelConfig kernel_config();

namespace detail {

/// Dispatch body(begin, end) chunks of [0, n) onto the worker pool; runs
/// serially if the pool is busy or unavailable.
void pool_parallel_for(std::uint64_t n,
                       const std::function<void(std::uint64_t, std::uint64_t)>& body);

/// True if a sweep of `n` index points on a `num_qubits` register should be
/// split across the pool.
bool should_parallelize(std::uint64_t n, unsigned num_qubits);

}  // namespace detail

/// Run body(begin, end) over a partition of [0, n): across the worker pool
/// when the engine is configured for it, else inline on this thread. The
/// partition is bitwise-neutral — kernels produce identical amplitudes for
/// any chunking.
template <class Body>
inline void kernel_parallel_for(std::uint64_t n, unsigned num_qubits, Body&& body) {
  if (!detail::should_parallelize(n, num_qubits)) {
    body(std::uint64_t{0}, n);
    return;
  }
  detail::pool_parallel_for(n, body);
}

// ---------------------------------------------------------------------------
// Blocked iteration helpers.
//
// A single-qubit kernel visits pair index k in [0, dim/2); the amplitude
// pair is (i0, i0 + stride) with stride = 2^target. A two-qubit kernel
// visits quad index k in [0, dim/4); the base amplitude has zero bits at
// both operand positions. Both helpers decompose an arbitrary k-range into
// maximal runs where the base index moves by a constant step, calling
//
//   body(base, run, step)   // amplitude indices base + j*step, j in [0, run)
//
// once per run. `step` is a std::integral_constant (1 or 2), so the inner
// loop stride is a compile-time constant and the loop auto-vectorizes. The
// per-run setup cost is O(1) and amortizes over the run length,
// eliminating the per-amplitude bit-insertion of the naive loops.

/// Single target bit at position `target` (stride = 2^target).
template <class Body>
inline void for_target_runs(unsigned target, std::uint64_t k0, std::uint64_t k1,
                            Body&& body) {
  const std::uint64_t stride = std::uint64_t{1} << target;
  if (stride == 1) {
    // Pairs are adjacent: i0 = 2k. One run covers the whole range.
    if (k1 > k0) {
      body(k0 << 1, k1 - k0, std::integral_constant<std::uint64_t, 2>{});
    }
    return;
  }
  std::uint64_t k = k0;
  while (k < k1) {
    const std::uint64_t off = k & (stride - 1);
    const std::uint64_t base = ((k - off) << 1) | off;
    const std::uint64_t run = std::min(stride - off, k1 - k);
    body(base, run, std::integral_constant<std::uint64_t, 1>{});
    k += run;
  }
}

/// Two zero bits at positions lo < hi.
template <class Body>
inline void for_two_target_runs(unsigned lo, unsigned hi, std::uint64_t k0,
                                std::uint64_t k1, Body&& body) {
  if (lo == 0) {
    // Runs extend over the mid bits; base moves by 2 per k.
    const std::uint64_t mid = std::uint64_t{1} << (hi - 1);
    std::uint64_t k = k0;
    while (k < k1) {
      const std::uint64_t off = k & (mid - 1);
      const std::uint64_t base = ((k - off) << 2) | (off << 1);
      const std::uint64_t run = std::min(mid - off, k1 - k);
      body(base, run, std::integral_constant<std::uint64_t, 2>{});
      k += run;
    }
    return;
  }
  const std::uint64_t slo = std::uint64_t{1} << lo;
  std::uint64_t k = k0;
  while (k < k1) {
    const std::uint64_t off = k & (slo - 1);
    const std::uint64_t run = std::min(slo - off, k1 - k);
    body(insert_two_zero_bits(k, lo, hi), run, std::integral_constant<std::uint64_t, 1>{});
    k += run;
  }
}

}  // namespace rqsim
