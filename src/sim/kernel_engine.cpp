#include "sim/kernel_engine.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rqsim {

namespace {

// A fixed-size fork-join pool: run() hands each worker one contiguous chunk
// and executes the first chunk on the calling thread. Workers idle on a
// condition variable between jobs, so per-gate dispatch cost is two lock
// round-trips, not thread creation.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t num_workers) {
    workers_.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
    chunks_.resize(num_workers);
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  std::size_t num_workers() const { return workers_.size(); }

  /// Split [0, n) across the workers plus the calling thread and block
  /// until every chunk completes.
  void run(std::uint64_t n, const std::function<void(std::uint64_t, std::uint64_t)>& body) {
    const std::size_t ways = workers_.size() + 1;
    const std::uint64_t per = (n + ways - 1) / ways;
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      pending_ = 0;
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        const std::uint64_t begin = std::min(per * (w + 1), n);
        const std::uint64_t end = std::min(begin + per, n);
        chunks_[w] = {begin, end};
        if (begin < end) {
          ++pending_;
        }
      }
      ++generation_;
    }
    work_cv_.notify_all();
    body(0, std::min(per, n));
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
      std::uint64_t begin = 0;
      std::uint64_t end = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) {
          return;
        }
        seen = generation_;
        begin = chunks_[index].first;
        end = chunks_[index].second;
        body = body_;
      }
      if (begin < end && body != nullptr) {
        (*body)(begin, end);
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) {
          done_cv_.notify_all();
        }
      }
    }
  }

  std::vector<std::thread> workers_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint64_t, std::uint64_t)>* body_ = nullptr;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

std::mutex g_engine_mu;
KernelConfig g_config;
std::unique_ptr<WorkerPool> g_pool;

// Lock-free mirrors of the config for the per-gate should_parallelize()
// check; a mutex there would tax every kernel invocation.
std::atomic<std::size_t> g_num_threads{1};
std::atomic<unsigned> g_threshold_qubits{18};

// Serializes pool usage: a kernel that cannot take this lock immediately
// (another thread is mid-gate on the pool) falls back to a serial sweep.
std::mutex g_dispatch_mu;

}  // namespace

void set_kernel_config(const KernelConfig& config) {
  std::lock_guard<std::mutex> dispatch_lock(g_dispatch_mu);
  std::lock_guard<std::mutex> lock(g_engine_mu);
  g_config = config;
  const std::size_t workers = config.num_threads > 1 ? config.num_threads - 1 : 0;
  if (workers == 0) {
    g_pool.reset();
  } else if (!g_pool || g_pool->num_workers() != workers) {
    g_pool = std::make_unique<WorkerPool>(workers);
  }
  g_num_threads.store(g_pool ? config.num_threads : 1, std::memory_order_relaxed);
  g_threshold_qubits.store(config.parallel_threshold_qubits,
                           std::memory_order_relaxed);
}

KernelConfig kernel_config() {
  std::lock_guard<std::mutex> lock(g_engine_mu);
  return g_config;
}

namespace detail {

bool should_parallelize(std::uint64_t n, unsigned num_qubits) {
  const std::size_t threads = g_num_threads.load(std::memory_order_relaxed);
  if (threads <= 1) {
    return false;
  }
  if (num_qubits < g_threshold_qubits.load(std::memory_order_relaxed)) {
    return false;
  }
  return n >= threads;
}

void pool_parallel_for(std::uint64_t n,
                       const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  std::unique_lock<std::mutex> dispatch(g_dispatch_mu, std::try_to_lock);
  if (!dispatch.owns_lock()) {
    // Pool busy (e.g. concurrent trial workers): degrade to serial.
    body(0, n);
    return;
  }
  WorkerPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_engine_mu);
    pool = g_pool.get();
  }
  if (pool == nullptr) {
    body(0, n);
    return;
  }
  pool->run(n, body);
}

}  // namespace detail

}  // namespace rqsim
