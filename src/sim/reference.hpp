// Reference simulator: builds the full 2^n x 2^n operator of a circuit with
// dense matrices and applies it directly. Exponentially slow — used only by
// tests to validate the fast kernels (n ≤ 10).
#pragma once

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// Lift one gate to a dense 2^n x 2^n operator.
DenseMatrix gate_to_dense(const Gate& gate, unsigned num_qubits);

/// Product of all gates in the circuit (last gate leftmost).
DenseMatrix circuit_to_dense(const Circuit& circuit);

/// Simulate by dense matrix-vector products (no kernels involved).
StateVector reference_simulate(const Circuit& circuit);

}  // namespace rqsim
