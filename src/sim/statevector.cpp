#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

StateVector::StateVector(unsigned num_qubits) : StateVector(num_qubits, 0) {}

StateVector::StateVector(unsigned num_qubits, std::uint64_t basis_index)
    : num_qubits_(num_qubits) {
  RQSIM_CHECK(num_qubits >= 1 && num_qubits <= 30,
              "StateVector: num_qubits must be in [1, 30] for explicit amplitudes");
  RQSIM_CHECK(basis_index < pow2(num_qubits), "StateVector: basis index out of range");
  amps_.assign(pow2(num_qubits), cplx(0.0));
  amps_[basis_index] = 1.0;
}

StateVector StateVector::from_buffer(unsigned num_qubits, std::vector<cplx> buffer) {
  RQSIM_CHECK(buffer.size() == pow2(num_qubits),
              "StateVector::from_buffer: buffer size must be 2^num_qubits");
  StateVector state;
  state.num_qubits_ = num_qubits;
  state.amps_ = std::move(buffer);
  return state;
}

std::vector<cplx> StateVector::take_buffer() {
  num_qubits_ = 0;
  return std::move(amps_);
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx(0.0));
  amps_[0] = 1.0;
}

double StateVector::norm_squared() const {
  double acc = 0.0;
  for (const cplx& a : amps_) {
    acc += std::norm(a);
  }
  return acc;
}

double StateVector::probability(std::uint64_t index) const {
  RQSIM_CHECK(index < amps_.size(), "StateVector::probability: index out of range");
  return std::norm(amps_[index]);
}

double StateVector::fidelity(const StateVector& other) const {
  RQSIM_CHECK(dim() == other.dim(), "StateVector::fidelity: size mismatch");
  cplx overlap = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    overlap += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::norm(overlap);
}

double StateVector::max_abs_diff(const StateVector& other) const {
  RQSIM_CHECK(dim() == other.dim(), "StateVector::max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    worst = std::max(worst, std::abs(amps_[i] - other.amps_[i]));
  }
  return worst;
}

bool StateVector::bitwise_equal(const StateVector& other) const {
  if (dim() != other.dim()) {
    return false;
  }
  return std::memcmp(amps_.data(), other.amps_.data(), amps_.size() * sizeof(cplx)) == 0;
}

}  // namespace rqsim
