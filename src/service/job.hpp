// Job model of the simulation service.
//
// A job is one complete noisy-simulation request — a prepared circuit, a
// noise model, and a NoisyRunConfig — plus scheduling metadata (priority)
// and an execution-mode selector (statevector / parallel statevector /
// accounting-only). Results extend NoisyRunResult with queue/execution
// timing and batch attribution: when the batch planner coalesces several
// compatible jobs into one merged schedule (service/batch.hpp), each job
// records the combined batch cost next to what it would have cost alone.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "noise/noise_model.hpp"
#include "sched/runner.hpp"

namespace rqsim {

enum class JobPriority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

enum class JobState : std::uint8_t {
  kQueued,     // accepted, waiting in the queue
  kRunning,    // claimed by a worker (possibly inside a batch)
  kDone,       // finished successfully; result available
  kFailed,     // execution threw; error message available
  kCancelled,  // removed from the queue before a worker claimed it
};

const char* job_state_name(JobState state);
const char* job_priority_name(JobPriority priority);

/// Everything needed to execute one simulation request.
struct JobSpec {
  Circuit circuit;   // must already be decomposed to 1-/2-qubit gates
  NoiseModel noise;  // must cover circuit.num_qubits()
  NoisyRunConfig config;

  /// > 1 runs through run_noisy_parallel (never batched with other jobs).
  std::size_t num_threads = 1;

  /// Accounting-only execution via analyze_noisy (no statevector).
  bool analyze_only = false;

  JobPriority priority = JobPriority::kNormal;

  /// Submitting tenant (empty = anonymous). Deliberately excluded from
  /// batch_fingerprint/batch_compatible: jobs from *different* tenants with
  /// the same workload are exactly what the cross-job planner should merge
  /// — the service counts such cross-tenant merges separately
  /// (ServiceStats::merged_cross_tenant_*), and the fleet router reports
  /// their hit rate as the headline sharding metric.
  std::string tenant;

  /// Distributed-trace id (0 = untraced). Minted by the router at admission
  /// (or by the client) and carried over the JSONL protocol; spans recorded
  /// while this job executes are tagged with it. Excluded from
  /// batch_fingerprint/batch_compatible like tenant: tracing identity never
  /// affects batchability.
  std::uint64_t trace_id = 0;
};

/// Terminal outcome of a job (valid once the state is kDone / kFailed /
/// kCancelled).
struct JobResult {
  std::uint64_t job_id = 0;
  JobState state = JobState::kQueued;

  /// Simulation result; meaningful only when state == kDone. `run.ops` is
  /// this job's *attributed* share of the (possibly merged) schedule.
  NoisyRunResult run;

  /// Error text; meaningful only when state == kFailed.
  std::string error;

  /// Wall-clock milliseconds spent waiting in the queue / executing.
  double queue_ms = 0.0;
  double exec_ms = 0.0;

  /// Trace id the job ran under (copied from JobSpec; 0 = untraced).
  std::uint64_t trace_id = 0;

  /// Batch attribution. batch_size == 1 means the job ran standalone and
  /// batch_ops == solo_ops == run.ops. In a merged batch, batch_ops is the
  /// combined op count of the whole merged schedule, and solo_ops is what
  /// this job's reorder+cache schedule would have cost on its own; the
  /// difference between Σ solo_ops and batch_ops is the cross-job saving.
  std::size_t batch_size = 1;
  opcount_t batch_ops = 0;
  opcount_t solo_ops = 0;
};

/// Cheap snapshot of a job's lifecycle (poll result).
struct JobStatus {
  std::uint64_t job_id = 0;
  JobState state = JobState::kQueued;
  JobPriority priority = JobPriority::kNormal;
};

/// Content fingerprint of the workload portion of a spec that must match
/// for two jobs to be batchable: circuit structure, noise rates, execution
/// mode, MSV budget, and fusion setting. Seed, trial count, observables and
/// priority are deliberately excluded — they vary freely within a batch.
std::uint64_t batch_fingerprint(const JobSpec& spec);

/// Exact batchability check (fingerprint equality plus a field-by-field
/// comparison, so hash collisions can never merge distinct workloads).
bool batch_compatible(const JobSpec& a, const JobSpec& b);

}  // namespace rqsim
