#include "service/workload.hpp"

#include "bench_circuits/factory.hpp"
#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "transpile/decompose.hpp"
#include "transpile/transpiler.hpp"

namespace rqsim {

Workload build_workload(const WorkloadSpec& spec) {
  Circuit logical;
  if (!spec.qasm.empty()) {
    logical = from_qasm(spec.qasm);
  } else if (!spec.circuit_spec.empty()) {
    logical = make_named_circuit(spec.circuit_spec);
  } else {
    throw Error("workload: one of circuit_spec or qasm is required");
  }

  DeviceModel dev;
  if (spec.device == "yorktown") {
    dev = yorktown_device();
  } else if (spec.device == "yorktown-directed") {
    dev = yorktown_device();
    dev.coupling = CouplingMap::yorktown_directed();
  } else if (spec.device == "ideal") {
    dev = ideal_device(spec.device_qubits > 0 ? spec.device_qubits
                                              : logical.num_qubits());
  } else if (spec.device == "artificial") {
    dev = artificial_device(
        spec.device_qubits > 0 ? spec.device_qubits : logical.num_qubits(),
        spec.device_rate);
  } else {
    throw Error("workload: unknown device '" + spec.device +
                "' (yorktown | yorktown-directed | artificial | ideal)");
  }
  if (spec.noise_scale != 1.0) {
    dev.noise = dev.noise.scaled(spec.noise_scale);
  }

  Workload out;
  out.device_name = dev.name;
  out.noise = std::move(dev.noise);
  if (spec.no_transpile) {
    out.circuit = decompose_to_cx_basis(logical);
  } else {
    RQSIM_CHECK(logical.num_qubits() <= dev.coupling.num_qubits(),
                "workload: circuit has more qubits than the device; set "
                "device_qubits or no_transpile");
    TranspileResult compiled = transpile(logical, dev.coupling);
    out.swaps_inserted = compiled.swaps_inserted;
    out.circuit = std::move(compiled.circuit);
  }
  return out;
}

}  // namespace rqsim
