// Declarative workload description: everything a remote client must send
// for the server to reconstruct a runnable (circuit, noise model) pair.
//
// The wire protocol cannot ship C++ objects, so submissions carry either a
// named-circuit spec (bench_circuits/factory.hpp) or inline OpenQASM text,
// plus a device selector — the same vocabulary the CLI `run` command uses.
// `build_workload` resolves the description into a transpiled/decomposed
// circuit and its device noise model; the CLI and the JSONL server share
// this one resolution path so a submitted job equals the local run.
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "noise/devices.hpp"

namespace rqsim {

struct WorkloadSpec {
  std::string circuit_spec;  // named circuit, e.g. "ghz5", "qv:5:5"
  std::string qasm;          // inline OpenQASM 2.0 (wins over circuit_spec)

  std::string device = "yorktown";  // yorktown | yorktown-directed | artificial | ideal
  unsigned device_qubits = 0;       // artificial/ideal size (0 = circuit size)
  double device_rate = 1e-3;        // artificial single-qubit error rate
  double noise_scale = 1.0;         // multiply every rate
  bool no_transpile = false;        // skip routing, only decompose
};

struct Workload {
  Circuit circuit;  // prepared: transpiled (unless no_transpile) + decomposed
  NoiseModel noise;
  std::string device_name;
  std::size_t swaps_inserted = 0;
};

/// Resolve a workload description. Throws rqsim::Error on unknown names,
/// malformed QASM, or a circuit larger than the device.
Workload build_workload(const WorkloadSpec& spec);

}  // namespace rqsim
