#include "service/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "service/socket_util.hpp"

namespace rqsim {

namespace {

/// Retry-with-backoff wrapper around one connect primitive.
template <typename ConnectFn>
int connect_with_retry(const ClientOptions& options, ConnectFn&& try_connect) {
  const int attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  int delay_ms = options.backoff_initial_ms > 0 ? options.backoff_initial_ms : 1;
  for (int attempt = 1;; ++attempt) {
    try {
      return try_connect();
    } catch (const Error&) {
      if (attempt >= attempts) {
        throw;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms = std::min(delay_ms * 2, std::max(options.backoff_max_ms, 1));
  }
}

int finish_client_fd(int fd, const ClientOptions& options) {
  if (options.io_timeout_ms > 0) {
    set_io_timeout(fd, options.io_timeout_ms);
  }
  return fd;
}

}  // namespace

SimServer::SimServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service), handler_(service_) {
  int listen_fd = -1;
  if (!config_.unix_path.empty()) {
    listen_fd = listen_unix(config_.unix_path);
  } else {
    listen_fd = listen_tcp(config_.tcp_port, tcp_port_);
  }
  listen_fd_.store(listen_fd);
}

SimServer::~SimServer() {
  stop();
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

std::string SimServer::endpoint() const {
  if (!config_.unix_path.empty()) {
    return "unix:" + config_.unix_path;
  }
  return "tcp:127.0.0.1:" + std::to_string(tcp_port_);
}

void SimServer::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  stop();
}

void SimServer::handle_connection(int fd) {
  std::string buffer;
  std::string line;
  while (!stopping_.load()) {
    const ReadLineStatus status = read_line_bounded(fd, buffer, line, kMaxLineBytes);
    if (status == ReadLineStatus::kEof || status == ReadLineStatus::kError ||
        status == ReadLineStatus::kTimeout) {
      break;
    }
    std::string response;
    if (status == ReadLineStatus::kOversized) {
      response = oversized_line_error().dump();
    } else {
      if (line.empty()) {
        continue;
      }
      response = handler_.handle_line(line);
    }
    response.push_back('\n');
    try {
      write_all(fd, response);
    } catch (const Error&) {
      break;  // peer went away mid-response
    }
    if (handler_.shutdown_requested()) {
      stopping_.store(true);
      // Unblock the accept loop so run() can return.
      const int listen_fd = listen_fd_.load();
      if (listen_fd >= 0) {
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
    if (*it == fd) {
      open_fds_.erase(it);
      break;
    }
  }
}

void SimServer::stop() {
  stopping_.store(true);
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // wake blocked reads; threads close the fds
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable() && t.get_id() != std::this_thread::get_id()) {
      t.join();
    } else if (t.joinable()) {
      t.detach();  // a connection thread triggered the shutdown itself
    }
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  service_.shutdown();
}

ServiceClient ServiceClient::connect_unix(const std::string& path,
                                          const ClientOptions& options) {
  const int fd = connect_with_retry(options, [&] {
    return connect_unix_fd(path, options.connect_timeout_ms);
  });
  return ServiceClient(finish_client_fd(fd, options));
}

ServiceClient ServiceClient::connect_tcp(const std::string& host, int port,
                                         const ClientOptions& options) {
  const int fd = connect_with_retry(options, [&] {
    return connect_tcp_fd(host, port, options.connect_timeout_ms);
  });
  return ServiceClient(finish_client_fd(fd, options));
}

ServiceClient ServiceClient::connect(const std::string& endpoint,
                                     const ClientOptions& options) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5), options);
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    return connect(endpoint.substr(4), options);
  }
  if (!endpoint.empty() && endpoint.front() == '/') {
    return connect_unix(endpoint, options);
  }
  const std::size_t colon = endpoint.rfind(':');
  RQSIM_CHECK(colon != std::string::npos,
              "client: endpoint must be a unix path or host:port");
  const std::string host =
      colon == 0 ? std::string("127.0.0.1") : endpoint.substr(0, colon);
  const int port = std::stoi(endpoint.substr(colon + 1));
  return connect_tcp(host, port, options);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), read_buffer_(std::move(other.read_buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    read_buffer_ = std::move(other.read_buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Json ServiceClient::request(const Json& request_json) {
  RQSIM_CHECK(fd_ >= 0, "client: not connected");
  write_all(fd_, request_json.dump() + "\n");
  std::string line;
  const ReadLineStatus status =
      read_line_bounded(fd_, read_buffer_, line, kMaxResponseLineBytes);
  RQSIM_CHECK(status != ReadLineStatus::kTimeout,
              "client: response timed out");
  RQSIM_CHECK(status == ReadLineStatus::kLine,
              "client: connection closed before a response arrived");
  return Json::parse(line);
}

}  // namespace rqsim
