#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace rqsim {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw Error("server: " + what + ": " + std::strerror(errno));
}

void write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error("server: send failed: " + std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

/// Read until '\n' (not included in the result). Returns false on EOF with
/// nothing buffered.
bool read_line(int fd, std::string& buffer, std::string& line) {
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;  // connection reset / closed under us
    }
    if (n == 0) {
      if (buffer.empty()) {
        return false;
      }
      line = std::move(buffer);  // final unterminated line
      buffer.clear();
      return true;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

int connect_unix_fd(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RQSIM_CHECK(path.size() < sizeof(addr.sun_path),
              "server: unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_UNIX)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("connect('" + path + "')");
  }
  return fd;
}

int connect_tcp_fd(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("server: bad IPv4 address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_INET)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

}  // namespace

SimServer::SimServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service), handler_(service_) {
  int listen_fd = -1;
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());  // stale socket from a crashed server
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    RQSIM_CHECK(config_.unix_path.size() < sizeof(addr.sun_path),
                "server: unix socket path too long");
    std::strncpy(addr.sun_path, config_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      socket_error("socket(AF_UNIX)");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      socket_error("bind('" + config_.unix_path + "')");
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      socket_error("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      socket_error("bind(127.0.0.1:" + std::to_string(config_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      socket_error("getsockname");
    }
    tcp_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd, 64) != 0) {
    socket_error("listen");
  }
  listen_fd_.store(listen_fd);
}

SimServer::~SimServer() {
  stop();
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

std::string SimServer::endpoint() const {
  if (!config_.unix_path.empty()) {
    return "unix:" + config_.unix_path;
  }
  return "tcp:127.0.0.1:" + std::to_string(tcp_port_);
}

void SimServer::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    open_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  stop();
}

void SimServer::handle_connection(int fd) {
  std::string buffer;
  std::string line;
  while (!stopping_.load() && read_line(fd, buffer, line)) {
    if (line.empty()) {
      continue;
    }
    std::string response = handler_.handle_line(line);
    response.push_back('\n');
    try {
      write_all(fd, response);
    } catch (const Error&) {
      break;  // peer went away mid-response
    }
    if (handler_.shutdown_requested()) {
      stopping_.store(true);
      // Unblock the accept loop so run() can return.
      const int listen_fd = listen_fd_.load();
      if (listen_fd >= 0) {
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
    if (*it == fd) {
      open_fds_.erase(it);
      break;
    }
  }
}

void SimServer::stop() {
  stopping_.store(true);
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // wake blocked reads; threads close the fds
    }
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable() && t.get_id() != std::this_thread::get_id()) {
      t.join();
    } else if (t.joinable()) {
      t.detach();  // a connection thread triggered the shutdown itself
    }
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  service_.shutdown();
}

ServiceClient ServiceClient::connect_unix(const std::string& path) {
  return ServiceClient(connect_unix_fd(path));
}

ServiceClient ServiceClient::connect_tcp(const std::string& host, int port) {
  return ServiceClient(connect_tcp_fd(host, port));
}

ServiceClient ServiceClient::connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5));
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    return connect(endpoint.substr(4));
  }
  if (!endpoint.empty() && endpoint.front() == '/') {
    return connect_unix(endpoint);
  }
  const std::size_t colon = endpoint.rfind(':');
  RQSIM_CHECK(colon != std::string::npos,
              "client: endpoint must be a unix path or host:port");
  const std::string host =
      colon == 0 ? std::string("127.0.0.1") : endpoint.substr(0, colon);
  const int port = std::stoi(endpoint.substr(colon + 1));
  return connect_tcp(host, port);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), read_buffer_(std::move(other.read_buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    read_buffer_ = std::move(other.read_buffer_);
    other.fd_ = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Json ServiceClient::request(const Json& request_json) {
  RQSIM_CHECK(fd_ >= 0, "client: not connected");
  write_all(fd_, request_json.dump() + "\n");
  std::string line;
  RQSIM_CHECK(read_line(fd_, read_buffer_, line),
              "client: connection closed before a response arrived");
  return Json::parse(line);
}

}  // namespace rqsim
