// Cross-job batch planner: one merged prefix-cache schedule for several
// compatible jobs.
//
// The paper's reorder + prefix-cache optimization shares computation
// *within* one trial set. The service sits above single runs, so it can
// push the reuse boundary further (the tree-reuse idea of TQSim,
// arXiv:2203.13892): queued jobs with identical (circuit, noise model,
// mode, MSV budget, fusion) — but arbitrary seeds, trial counts and
// observables — are merged into one trial list, re-sorted into a single
// reorder order, and executed by one scheduler walk. Every shared error
// prefix is then advanced once for the whole batch instead of once per
// job; in particular the error-free full-circuit pass, which dominates at
// realistic error rates, is paid exactly once.
//
// Execution rides on the work-stealing prefix-tree executor
// (sched/tree_exec.hpp): the merged trial list becomes one trie and its
// subtrees run on `num_threads` workers with zero redundant prefix work.
//
// Bitwise equivalence guarantee (unfused kernels): each job's histogram and
// observable means are identical to a standalone `run_noisy` with the same
// config, at any thread count. This holds because
//   1. each job's trials are generated from its own Rng(seed) and given
//      per-trial measurement seeds at exactly run_noisy's stream
//      positions, then reordered with the same sort before merging;
//   2. the merge is stable per job (ties broken by job then by position in
//      the job's own reordered list), so the merged order restricted to
//      one job is the job's standalone order — the order its observable
//      sums are reduced in;
//   3. a trial's final checkpoint sees the same operator sequence in both
//      schedules, and outcome sampling draws from the trial's private
//      Rng(meas_seed), independent of finish order and thread
//      interleaving.
// With fuse_gates the merged schedule fuses different layer segments than
// a standalone run, so results are epsilon-equivalent rather than bitwise.
//
// Attribution: the merged schedule's combined op count is attributed back
// proportionally to each job's solo cost (what its own reorder+cache
// schedule would have executed), so per-job `ops` sum exactly to the batch
// total and normalized computation stays comparable across batch sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "service/job.hpp"

namespace rqsim {

/// Outcome of executing a batch of >= 1 compatible jobs in one schedule.
struct BatchExecution {
  /// One full NoisyRunResult per input job (input order), with `ops` set to
  /// the job's attributed share of `batch_ops`.
  std::vector<NoisyRunResult> per_job;

  /// Each job's standalone reorder+cache op count (accounting walk).
  std::vector<opcount_t> solo_ops;

  /// Combined op count of the merged schedule; strictly less than the sum
  /// of solo_ops whenever any error prefix is shared across jobs.
  opcount_t batch_ops = 0;
};

/// Execute `jobs` (all mutually batch_compatible; see service/job.hpp) as
/// one merged prefix-tree schedule on `num_threads` workers. A single job
/// degenerates to the exact standalone run_noisy schedule. Throws
/// rqsim::Error on invalid specs.
BatchExecution execute_batch(const std::vector<const JobSpec*>& jobs,
                             std::size_t num_threads = 1);

}  // namespace rqsim
