#include "service/job.hpp"

#include <cstring>

namespace rqsim {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* job_priority_name(JobPriority priority) {
  switch (priority) {
    case JobPriority::kLow: return "low";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kHigh: return "high";
  }
  return "unknown";
}

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }

  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
};

void mix_noise(Fnv1a& fnv, const NoiseModel& noise, unsigned num_qubits) {
  for (qubit_t q = 0; q < num_qubits; ++q) {
    fnv.mix(noise.single_qubit_rate(q));
    fnv.mix(noise.measurement_flip_rate(q));
    fnv.mix(noise.idle_pauli_rate(q));
    for (const double w : noise.single_pauli_weights(q)) {
      fnv.mix(w);
    }
    for (const double w : noise.idle_pauli_weights(q)) {
      fnv.mix(w);
    }
  }
  for (qubit_t a = 0; a < num_qubits; ++a) {
    for (qubit_t b = a + 1; b < num_qubits; ++b) {
      fnv.mix(noise.two_qubit_rate(a, b));
    }
  }
}

bool same_noise(const NoiseModel& a, const NoiseModel& b, unsigned num_qubits) {
  for (qubit_t q = 0; q < num_qubits; ++q) {
    if (a.single_qubit_rate(q) != b.single_qubit_rate(q) ||
        a.measurement_flip_rate(q) != b.measurement_flip_rate(q) ||
        a.idle_pauli_rate(q) != b.idle_pauli_rate(q) ||
        a.single_pauli_weights(q) != b.single_pauli_weights(q) ||
        a.idle_pauli_weights(q) != b.idle_pauli_weights(q)) {
      return false;
    }
  }
  for (qubit_t x = 0; x < num_qubits; ++x) {
    for (qubit_t y = x + 1; y < num_qubits; ++y) {
      if (a.two_qubit_rate(x, y) != b.two_qubit_rate(x, y)) {
        return false;
      }
    }
  }
  return true;
}

bool same_circuit(const Circuit& a, const Circuit& b) {
  if (a.num_qubits() != b.num_qubits() || a.num_gates() != b.num_gates() ||
      a.measured_qubits() != b.measured_qubits()) {
    return false;
  }
  for (std::size_t i = 0; i < a.num_gates(); ++i) {
    const Gate& ga = a.gates()[i];
    const Gate& gb = b.gates()[i];
    if (ga.kind != gb.kind || ga.qubits != gb.qubits || ga.params != gb.params) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::uint64_t batch_fingerprint(const JobSpec& spec) {
  Fnv1a fnv;
  fnv.mix(static_cast<std::uint64_t>(spec.circuit.num_qubits()));
  for (const Gate& gate : spec.circuit.gates()) {
    fnv.mix(static_cast<std::uint64_t>(gate.kind));
    for (const qubit_t q : gate.qubits) {
      fnv.mix(static_cast<std::uint64_t>(q));
    }
    for (const double p : gate.params) {
      fnv.mix(p);
    }
  }
  for (const qubit_t q : spec.circuit.measured_qubits()) {
    fnv.mix(static_cast<std::uint64_t>(q));
  }
  mix_noise(fnv, spec.noise, spec.circuit.num_qubits());
  fnv.mix(static_cast<std::uint64_t>(spec.config.mode));
  fnv.mix(static_cast<std::uint64_t>(spec.config.max_states));
  fnv.mix(static_cast<std::uint64_t>(spec.config.fuse_gates));
  fnv.mix(static_cast<std::uint64_t>(spec.config.frame_collapse));
  fnv.mix(static_cast<std::uint64_t>(spec.analyze_only));
  fnv.mix(static_cast<std::uint64_t>(spec.num_threads > 1));
  return fnv.h;
}

bool batch_compatible(const JobSpec& a, const JobSpec& b) {
  // Only serial statevector cached-reordered jobs are merged: the batch
  // planner's bitwise-equivalence guarantee relies on the single-threaded
  // prefix-cache schedule (see service/batch.hpp).
  if (a.analyze_only || b.analyze_only || a.num_threads > 1 || b.num_threads > 1) {
    return false;
  }
  if (a.config.mode != ExecutionMode::kCachedReordered ||
      b.config.mode != ExecutionMode::kCachedReordered) {
    return false;
  }
  if (a.config.max_states != b.config.max_states ||
      a.config.fuse_gates != b.config.fuse_gates ||
      a.config.frame_collapse != b.config.frame_collapse) {
    return false;
  }
  return same_circuit(a.circuit, b.circuit) &&
         same_noise(a.noise, b.noise, a.circuit.num_qubits());
}

}  // namespace rqsim
