#include "service/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace rqsim {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw Error("socket: " + what + ": " + std::strerror(errno));
}

/// Finish a non-blocking connect within timeout_ms; returns false on
/// timeout or a failed connection (errno set).
bool await_connect(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (ready == 0) {
      errno = ETIMEDOUT;
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return false;
    }
    if (err != 0) {
      errno = err;
      return false;
    }
    return true;
  }
}

int set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return -1;
  }
  return ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

/// connect() with an optional bound; on failure closes the fd, restores
/// errno and returns -1.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t addr_len,
                         int timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, addr, addr_len) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  if (set_nonblocking(fd, true) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (::connect(fd, addr, addr_len) != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (!await_connect(fd, timeout_ms)) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (set_nonblocking(fd, false) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace

void write_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error("socket: send failed: " + std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

ReadLineStatus read_line_bounded(int fd, std::string& buffer, std::string& line,
                                 std::size_t max_line) {
  // When a frame outgrows max_line before its newline arrives, flip into
  // discard mode: drop buffered bytes but keep scanning for the newline so
  // memory stays bounded and the stream re-synchronizes on the next frame.
  bool discarding = false;
  while (true) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      if (discarding || newline > max_line) {
        buffer.erase(0, newline + 1);
        return ReadLineStatus::kOversized;
      }
      line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return ReadLineStatus::kLine;
    }
    if (buffer.size() > max_line) {
      buffer.clear();
      discarding = true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadLineStatus::kTimeout;  // SO_RCVTIMEO expired
      }
      return ReadLineStatus::kError;
    }
    if (n == 0) {
      if (discarding) {
        buffer.clear();
        return ReadLineStatus::kOversized;
      }
      if (buffer.empty()) {
        return ReadLineStatus::kEof;
      }
      line = std::move(buffer);  // final unterminated line
      buffer.clear();
      return ReadLineStatus::kLine;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

int connect_unix_fd(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RQSIM_CHECK(path.size() < sizeof(addr.sun_path),
              "socket: unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_UNIX)");
  }
  if (connect_with_timeout(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                           timeout_ms) < 0) {
    socket_error("connect('" + path + "')");
  }
  return fd;
}

int connect_tcp_fd(const std::string& host, int port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("socket: bad IPv4 address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_INET)");
  }
  if (connect_with_timeout(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                           timeout_ms) < 0) {
    socket_error("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int listen_unix(const std::string& path) {
  ::unlink(path.c_str());  // stale socket from a crashed server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RQSIM_CHECK(path.size() < sizeof(addr.sun_path),
              "socket: unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_UNIX)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("bind('" + path + "')");
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("listen");
  }
  return fd;
}

int listen_tcp(int port, int& bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    socket_error("socket(AF_INET)");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("getsockname");
  }
  bound_port = ntohs(bound.sin_port);
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_error("listen");
  }
  return fd;
}

}  // namespace rqsim
