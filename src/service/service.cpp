#include "service/service.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sched/parallel.hpp"
#include "service/batch.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace rqsim {

namespace {

using telemetry::clock_now;
using telemetry::ms_between;

// Queue/latency metrics. The histograms are log-scale over microseconds —
// enough resolution to separate "served from cache in µs" from "waited out
// a deep queue in seconds" without per-bucket configuration.
telemetry::Counter g_submitted("service.jobs_submitted");
telemetry::Counter g_rejected("service.jobs_rejected");
telemetry::Counter g_completed("service.jobs_completed");
telemetry::Counter g_failed("service.jobs_failed");
telemetry::Histogram g_queue_depth("service.queue_depth");
telemetry::Histogram g_queue_us("service.job_queue_us");
telemetry::Histogram g_exec_us("service.job_exec_us");
telemetry::Histogram g_batch_jobs("service.batch_jobs");

std::uint64_t to_us(double ms) {
  return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

}  // namespace

SimService::SimService(ServiceConfig config) : config_(config) {
  RQSIM_CHECK(config_.queue_capacity > 0, "SimService: queue_capacity must be > 0");
  RQSIM_CHECK(config_.max_batch_jobs > 0, "SimService: max_batch_jobs must be > 0");
  // Pin the process-uptime origin no later than service birth, so the
  // `stats` verb's uptime reflects how long the service has been up.
  telemetry::process_start_time();
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() { shutdown(); }

std::string SimService::validate_spec(const JobSpec& spec) {
  try {
    spec.circuit.validate();
    RQSIM_CHECK(spec.noise.num_qubits() >= spec.circuit.num_qubits(),
                "noise model covers fewer qubits than the circuit");
    validate_run_limits(spec.config, "job");
    RQSIM_CHECK(spec.num_threads <= 1024,
                "num_threads exceeds the supported maximum (overflowed or "
                "negative value?)");
    if (!spec.analyze_only) {
      RQSIM_CHECK(spec.circuit.num_qubits() <= 30,
                  "statevector jobs are limited to 30 qubits; use analyze_only");
    }
    if (spec.num_threads > 1) {
      RQSIM_CHECK(!spec.analyze_only, "parallel execution is statevector-only");
      RQSIM_CHECK(spec.config.mode == ExecutionMode::kCachedReordered,
                  "parallel execution supports only the cached mode");
    }
    if (!spec.analyze_only) {
      RQSIM_CHECK(spec.config.mode != ExecutionMode::kCachedUnordered,
                  "the unordered-cache ablation is accounting-only");
    }
  } catch (const Error& e) {
    return e.what();
  }
  return std::string();
}

SubmitOutcome SimService::try_submit(JobSpec spec) {
  SubmitOutcome outcome;
  std::string invalid = validate_spec(spec);
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    outcome.status = SubmitStatus::kShutdown;
    outcome.error = "service is shutting down";
    return outcome;
  }
  if (!invalid.empty()) {
    ++stats_.rejected;
    g_rejected.increment();
    outcome.status = SubmitStatus::kInvalid;
    outcome.error = std::move(invalid);
    return outcome;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected;
    g_rejected.increment();
    outcome.status = SubmitStatus::kQueueFull;
    outcome.error = "queue full (capacity " + std::to_string(config_.queue_capacity) +
                    "); retry later";
    return outcome;
  }
  const std::uint64_t id = next_id_++;
  Job& job = jobs_[id];
  job.id = id;
  job.fingerprint = batch_fingerprint(spec);
  job.spec = std::move(spec);
  job.submitted_at = clock_now();
  job.result.job_id = id;
  queue_.push_back(id);
  ++stats_.submitted;
  g_submitted.increment();
  g_queue_depth.record(queue_.size());
  outcome.job_id = id;
  work_cv_.notify_one();
  return outcome;
}

std::uint64_t SimService::submit(JobSpec spec) {
  const SubmitOutcome outcome = try_submit(std::move(spec));
  RQSIM_CHECK(outcome.status == SubmitStatus::kAccepted,
              "SimService::submit: " + outcome.error);
  return outcome.job_id;
}

std::optional<JobStatus> SimService::poll(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  JobStatus status;
  status.job_id = job_id;
  status.state = it->second.state;
  status.priority = it->second.spec.priority;
  return status;
}

std::optional<JobResult> SimService::result(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state == JobState::kQueued ||
      it->second.state == JobState::kRunning) {
    return std::nullopt;
  }
  return it->second.result;
}

JobResult SimService::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  RQSIM_CHECK(it != jobs_.end(), "SimService::wait: unknown job id");
  done_cv_.wait(lock, [&] {
    const JobState s = it->second.state;
    return s != JobState::kQueued && s != JobState::kRunning;
  });
  return it->second.result;
}

bool SimService::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  const auto queue_it = std::find(queue_.begin(), queue_.end(), job_id);
  if (queue_it == queue_.end()) {
    return false;  // claimed between state check and now (not reachable: lock held)
  }
  queue_.erase(queue_it);
  it->second.state = JobState::kCancelled;
  it->second.result.state = JobState::kCancelled;
  it->second.result.queue_ms = ms_between(it->second.submitted_at, clock_now());
  ++stats_.cancelled;
  done_cv_.notify_all();
  return true;
}

ServiceStats SimService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.queued_now = queue_.size();
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    (void)id;
    if (job.state == JobState::kRunning) {
      ++running;
    }
  }
  snapshot.running_now = running;
  return snapshot;
}

telemetry::SloTracker SimService::slo_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slo_;
}

std::vector<SimService::Job*> SimService::claim_batch_locked() {
  std::vector<Job*> group;
  if (queue_.empty()) {
    return group;
  }
  // Highest priority first, FIFO within a priority level.
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Job& a = jobs_.at(queue_[i]);
    const Job& b = jobs_.at(queue_[best]);
    if (static_cast<int>(a.spec.priority) > static_cast<int>(b.spec.priority)) {
      best = i;
    }
  }
  Job& lead = jobs_.at(queue_[best]);
  group.push_back(&lead);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));

  // Gather batchable followers (any priority — riding along never delays
  // them) while respecting the batch size cap.
  if (config_.max_batch_jobs > 1 &&
      !lead.spec.analyze_only && lead.spec.num_threads <= 1 &&
      lead.spec.config.mode == ExecutionMode::kCachedReordered) {
    for (auto it = queue_.begin();
         it != queue_.end() && group.size() < config_.max_batch_jobs;) {
      Job& candidate = jobs_.at(*it);
      if (candidate.fingerprint == lead.fingerprint &&
          batch_compatible(lead.spec, candidate.spec)) {
        group.push_back(&candidate);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const auto now = clock_now();
  for (Job* job : group) {
    job->state = JobState::kRunning;
    job->started_at = now;
  }
  return group;
}

void SimService::execute_batch_group(const std::vector<Job*>& group) {
  // The whole merged group runs as one unit of work, so its spans carry the
  // lead job's trace id (the job the planner formed the batch around).
  // Followers keep their own ids on their queue-wait events below.
  telemetry::TraceContext trace_ctx(group.front()->spec.trace_id);
  RQSIM_SPAN("service.execute_batch");
  g_batch_jobs.record(group.size());
  // Runs without the lock: specs are immutable once queued and the jobs are
  // in kRunning, which no other path mutates.
  std::vector<NoisyRunResult> runs;
  std::vector<opcount_t> solo_ops;
  opcount_t batch_ops = 0;
  std::string error;
  try {
    if (group.size() > 1) {
      std::vector<const JobSpec*> specs;
      specs.reserve(group.size());
      std::size_t threads = 1;
      for (const Job* job : group) {
        specs.push_back(&job->spec);
        // Any job's thread request benefits the whole merged schedule;
        // results are bitwise independent of the thread count.
        threads = std::max(threads, job->spec.num_threads);
      }
      BatchExecution batch = execute_batch(specs, threads);
      runs = std::move(batch.per_job);
      solo_ops = std::move(batch.solo_ops);
      batch_ops = batch.batch_ops;
    } else {
      const JobSpec& spec = group.front()->spec;
      NoisyRunResult run;
      if (spec.analyze_only) {
        run = analyze_noisy(spec.circuit, spec.noise, spec.config);
      } else if (spec.num_threads > 1) {
        ParallelRunConfig config;
        static_cast<NoisyRunConfig&>(config) = spec.config;
        config.num_threads = spec.num_threads;
        run = run_noisy_parallel(spec.circuit, spec.noise, config);
      } else {
        run = run_noisy(spec.circuit, spec.noise, spec.config);
      }
      batch_ops = run.ops;
      solo_ops.push_back(run.ops);
      runs.push_back(std::move(run));
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  const auto finished = clock_now();
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t j = 0; j < group.size(); ++j) {
    Job& job = *group[j];
    job.result.queue_ms = ms_between(job.submitted_at, job.started_at);
    job.result.exec_ms = ms_between(job.started_at, finished);
    g_queue_us.record(to_us(job.result.queue_ms));
    g_exec_us.record(to_us(job.result.exec_ms));
    // Queue wait as a retroactive complete event: the endpoints were
    // captured as TimePoints before anyone knew the job would be traced.
    telemetry::trace_complete("service.queue_wait",
                              telemetry::to_ns(job.submitted_at),
                              telemetry::to_ns(job.started_at),
                              job.spec.trace_id);
    job.result.trace_id = job.spec.trace_id;
    slo_.record(job.spec.tenant, job.id, job.spec.trace_id,
                to_us(job.result.queue_ms), to_us(job.result.exec_ms));
    job.result.batch_size = group.size();
    if (error.empty()) {
      job.state = JobState::kDone;
      job.result.state = JobState::kDone;
      job.result.run = std::move(runs[j]);
      job.result.batch_ops = batch_ops;
      job.result.solo_ops = solo_ops[j];
      ++stats_.completed;
      g_completed.increment();
    } else {
      job.state = JobState::kFailed;
      job.result.state = JobState::kFailed;
      job.result.error = error;
      ++stats_.failed;
      g_failed.increment();
    }
  }
  if (error.empty() && group.size() > 1) {
    ++stats_.merged_batches;
    stats_.merged_jobs += group.size();
    stats_.merged_batch_ops += batch_ops;
    for (const opcount_t s : solo_ops) {
      stats_.merged_solo_ops += s;
    }
    bool cross_tenant = false;
    for (const Job* job : group) {
      if (job->spec.tenant != group.front()->spec.tenant) {
        cross_tenant = true;
        break;
      }
    }
    if (cross_tenant) {
      ++stats_.merged_cross_tenant_batches;
      stats_.merged_cross_tenant_jobs += group.size();
    }
  }
  done_cv_.notify_all();
}

void SimService::worker_loop() {
  telemetry::set_thread_lane("service.worker");
  while (true) {
    std::vector<Job*> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      group = claim_batch_locked();
    }
    if (!group.empty()) {
      execute_batch_group(group);
    }
  }
}

std::size_t SimService::run_pending(std::size_t max_batches) {
  std::size_t executed = 0;
  for (std::size_t b = 0; b < max_batches; ++b) {
    std::vector<Job*> group;
    {
      std::lock_guard<std::mutex> lock(mu_);
      group = claim_batch_locked();
    }
    if (group.empty()) {
      break;
    }
    execute_batch_group(group);
    executed += group.size();
  }
  return executed;
}

void SimService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // Serialize the join phase: shutdown() can race with itself (e.g. a
  // server's stop() on one thread and the destructor on another), and
  // joining the same std::thread twice is undefined behavior that deadlocks
  // in practice. The second caller finds an empty vector and returns.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      // rqsim-analyze: allow(RQS102) join_mu_ exists precisely to serialize this join phase; no other lock is held here
      worker.join();
    }
  }
  workers_.clear();
}

}  // namespace rqsim
