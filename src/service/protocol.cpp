#include "service/protocol.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace rqsim {

namespace {

Json error_response(const std::string& code, const std::string& detail) {
  Json response = Json::object();
  response.set("ok", Json(false));
  response.set("error", Json(code));
  response.set("detail", Json(detail));
  return response;
}

ExecutionMode mode_from_string(const std::string& mode) {
  if (mode == "baseline") {
    return ExecutionMode::kBaseline;
  }
  if (mode == "cached") {
    return ExecutionMode::kCachedReordered;
  }
  if (mode == "unordered") {
    return ExecutionMode::kCachedUnordered;
  }
  throw Error("unknown mode '" + mode + "' (baseline | cached | unordered)");
}

JobPriority priority_from_string(const std::string& priority) {
  if (priority == "low") {
    return JobPriority::kLow;
  }
  if (priority == "normal") {
    return JobPriority::kNormal;
  }
  if (priority == "high") {
    return JobPriority::kHigh;
  }
  throw Error("unknown priority '" + priority + "' (low | normal | high)");
}

}  // namespace

Json oversized_line_error() {
  return error_response("oversized_line",
                        "request line exceeds " + std::to_string(kMaxLineBytes) +
                            " bytes; frame discarded");
}

Json workload_to_json(const WorkloadSpec& spec) {
  Json json = Json::object();
  if (!spec.circuit_spec.empty()) {
    json.set("circuit", Json(spec.circuit_spec));
  }
  if (!spec.qasm.empty()) {
    json.set("qasm", Json(spec.qasm));
  }
  json.set("device", Json(spec.device));
  if (spec.device_qubits > 0) {
    json.set("qubits", Json(static_cast<std::uint64_t>(spec.device_qubits)));
  }
  json.set("rate", Json(spec.device_rate));
  json.set("scale", Json(spec.noise_scale));
  json.set("no_transpile", Json(spec.no_transpile));
  return json;
}

WorkloadSpec workload_from_json(const Json& json) {
  WorkloadSpec spec;
  spec.circuit_spec = json.get_string("circuit", "");
  spec.qasm = json.get_string("qasm", "");
  spec.device = json.get_string("device", "yorktown");
  spec.device_qubits = static_cast<unsigned>(json.get_u64("qubits", 0));
  spec.device_rate = json.get_number("rate", 1e-3);
  spec.noise_scale = json.get_number("scale", 1.0);
  spec.no_transpile = json.get_bool("no_transpile", false);
  return spec;
}

Json make_submit_request(const WorkloadSpec& workload, const SubmitParams& params) {
  Json request = Json::object();
  request.set("op", Json("submit"));
  request.set("workload", workload_to_json(workload));
  request.set("trials", Json(static_cast<std::uint64_t>(params.trials)));
  request.set("seed", Json(params.seed));
  request.set("mode", Json(params.mode));
  request.set("max_states", Json(static_cast<std::uint64_t>(params.max_states)));
  request.set("threads", Json(static_cast<std::uint64_t>(params.threads)));
  request.set("priority", Json(params.priority));
  request.set("analyze", Json(params.analyze));
  request.set("fuse", Json(params.fuse));
  request.set("frames", Json(params.frames));
  if (!params.tenant.empty()) {
    request.set("tenant", Json(params.tenant));
  }
  return request;
}

Json metrics_snapshot_to_json(const telemetry::MetricsSnapshot& snapshot) {
  Json json = Json::object();
  for (const telemetry::MetricValue& metric : snapshot.metrics) {
    if (metric.kind == telemetry::MetricKind::kHistogram) {
      Json hist = Json::object();
      hist.set("count", Json(metric.count));
      hist.set("sum", Json(metric.sum));
      Json buckets = Json::array();
      for (const std::uint64_t bucket : metric.buckets) {
        buckets.push_back(Json(bucket));
      }
      hist.set("buckets", std::move(buckets));
      json.set(metric.name, std::move(hist));
    } else if (metric.kind == telemetry::MetricKind::kMaxGauge) {
      Json gauge = Json::object();
      gauge.set("max", Json(metric.value));
      json.set(metric.name, std::move(gauge));
    } else {
      json.set(metric.name, Json(metric.value));
    }
  }
  return json;
}

telemetry::MetricsSnapshot metrics_snapshot_from_json(const Json& json) {
  telemetry::MetricsSnapshot snapshot;
  if (!json.is_object()) {
    return snapshot;
  }
  for (const auto& [name, value] : json.as_object()) {
    telemetry::MetricValue metric;
    metric.name = name;
    if (value.is_number()) {
      metric.kind = telemetry::MetricKind::kCounter;
      metric.value = value.as_u64();
    } else if (value.is_object() && value.has("max")) {
      metric.kind = telemetry::MetricKind::kMaxGauge;
      metric.value = value.at("max").as_u64();
    } else if (value.is_object() && value.has("buckets")) {
      metric.kind = telemetry::MetricKind::kHistogram;
      metric.count = value.get_u64("count", 0);
      metric.sum = value.get_u64("sum", 0);
      for (const Json& bucket : value.at("buckets").as_array()) {
        metric.buckets.push_back(bucket.as_u64());
      }
    } else {
      continue;  // unknown shape from a newer/older peer: skip, don't fail
    }
    snapshot.metrics.push_back(std::move(metric));
  }
  return snapshot;
}

Json job_result_to_json(const JobResult& result, std::size_t num_measured) {
  Json json = Json::object();
  json.set("ops", Json(result.run.ops));
  json.set("baseline_ops", Json(result.run.baseline_ops));
  json.set("normalized_computation", Json(result.run.normalized_computation));
  json.set("max_live_states", Json(result.run.max_live_states));
  json.set("mean_errors_per_trial", Json(result.run.trial_stats.mean_errors));
  json.set("queue_ms", Json(result.queue_ms));
  json.set("exec_ms", Json(result.exec_ms));
  json.set("batch_size", Json(result.batch_size));
  json.set("batch_ops", Json(result.batch_ops));
  json.set("solo_ops", Json(result.solo_ops));
  {
    const TelemetrySummary& telem = result.run.telemetry;
    Json summary = Json::object();
    summary.set("measured", Json(telem.measured));
    summary.set("measured_ops", Json(telem.measured_ops));
    summary.set("ops_saved_vs_baseline", Json(telem.ops_saved_vs_baseline));
    summary.set("prefix_cache_hit_ratio", Json(telem.prefix_cache_hit_ratio));
    summary.set("wall_ms", Json(telem.wall_ms));
    summary.set("steals", Json(telem.steals));
    summary.set("inline_fallbacks", Json(telem.inline_fallbacks));
    summary.set("pool_reuses", Json(telem.pool_reuses));
    summary.set("pool_allocs", Json(telem.pool_allocs));
    summary.set("peak_live_states", Json(telem.peak_live_states));
    summary.set("frame_collapsed_trials", Json(telem.frame_collapsed_trials));
    summary.set("frame_ops", Json(telem.frame_ops));
    summary.set("uncomputations", Json(telem.uncomputations));
    json.set("telemetry", std::move(summary));
  }
  if (!result.run.histogram.empty()) {
    Json histogram = Json::object();
    for (const auto& [outcome, count] : result.run.histogram) {
      histogram.set(to_bitstring(outcome, static_cast<unsigned>(num_measured)),
                    Json(count));
    }
    json.set("histogram", std::move(histogram));
  }
  if (!result.run.observable_means.empty()) {
    Json means = Json::array();
    for (const double mean : result.run.observable_means) {
      means.push_back(Json(mean));
    }
    json.set("observable_means", std::move(means));
  }
  return json;
}

std::string ProtocolHandler::handle_line(const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const Error& e) {
    return error_response("bad_request", e.what()).dump();
  }
  return handle(request).dump();
}

Json ProtocolHandler::handle(const Json& request) {
  try {
    if (!request.is_object()) {
      return error_response("bad_request", "request must be a JSON object");
    }
    const std::string op = request.get_string("op", "");
    if (op == "ping") {
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("pong", Json(true));
      return response;
    }
    if (op == "submit") {
      return handle_submit(request);
    }
    if (op == "status") {
      return handle_status(request, /*wait=*/false);
    }
    if (op == "wait") {
      return handle_status(request, /*wait=*/true);
    }
    if (op == "cancel") {
      if (!request.has("job")) {
        return error_response("bad_request", "cancel requires a \"job\" id");
      }
      const std::uint64_t job_id = request.at("job").as_u64();
      const bool cancelled = service_.cancel(job_id);
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("job", Json(job_id));
      response.set("cancelled", Json(cancelled));
      return response;
    }
    if (op == "stats") {
      const ServiceStats stats = service_.stats();
      Json body = Json::object();
      body.set("submitted", Json(stats.submitted));
      body.set("rejected", Json(stats.rejected));
      body.set("completed", Json(stats.completed));
      body.set("failed", Json(stats.failed));
      body.set("cancelled", Json(stats.cancelled));
      body.set("merged_batches", Json(stats.merged_batches));
      body.set("merged_jobs", Json(stats.merged_jobs));
      body.set("merged_batch_ops", Json(stats.merged_batch_ops));
      body.set("merged_solo_ops", Json(stats.merged_solo_ops));
      body.set("merged_cross_tenant_batches", Json(stats.merged_cross_tenant_batches));
      body.set("merged_cross_tenant_jobs", Json(stats.merged_cross_tenant_jobs));
      body.set("queued_now", Json(stats.queued_now));
      body.set("running_now", Json(stats.running_now));
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("stats", std::move(body));
      // Full process-wide metrics snapshot (empty object when telemetry is
      // compiled out or disabled): registry counters, gauges, histograms.
      response.set("telemetry",
                   metrics_snapshot_to_json(telemetry::snapshot_metrics()));
      return response;
    }
    if (op == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("stopping", Json(true));
      return response;
    }
    return error_response("bad_request", "unknown op '" + op + "'");
  } catch (const Error& e) {
    return error_response("bad_request", e.what());
  }
}

bool ProtocolHandler::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

Json ProtocolHandler::handle_submit(const Json& request) {
  JobSpec spec;
  std::size_t num_measured = 0;
  try {
    RQSIM_CHECK(request.has("workload"), "submit: missing 'workload'");
    Workload workload = build_workload(workload_from_json(request.at("workload")));
    num_measured = workload.circuit.num_measured();
    spec.circuit = std::move(workload.circuit);
    spec.noise = std::move(workload.noise);
    spec.config.num_trials = static_cast<std::size_t>(request.get_u64("trials", 1024));
    spec.config.seed = request.get_u64("seed", 1);
    spec.config.mode = mode_from_string(request.get_string("mode", "cached"));
    spec.config.max_states =
        static_cast<std::size_t>(request.get_u64("max_states", 0));
    spec.config.fuse_gates = request.get_bool("fuse", false);
    spec.config.frame_collapse = request.get_bool("frames", false);
    spec.num_threads = static_cast<std::size_t>(request.get_u64("threads", 1));
    spec.analyze_only = request.get_bool("analyze", false);
    spec.priority = priority_from_string(request.get_string("priority", "normal"));
    spec.tenant = request.get_string("tenant", "");
  } catch (const Error& e) {
    return error_response("invalid", e.what());
  }

  const SubmitOutcome outcome = service_.try_submit(std::move(spec));
  switch (outcome.status) {
    case SubmitStatus::kAccepted: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        job_measured_[outcome.job_id] = num_measured;
      }
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("job", Json(outcome.job_id));
      response.set("state", Json("queued"));
      return response;
    }
    case SubmitStatus::kQueueFull:
      return error_response("queue_full", outcome.error);
    case SubmitStatus::kInvalid:
      return error_response("invalid", outcome.error);
    case SubmitStatus::kShutdown:
      return error_response("shutdown", outcome.error);
  }
  return error_response("internal", "unreachable submit status");
}

Json ProtocolHandler::handle_status(const Json& request, bool wait) {
  if (!request.has("job")) {
    return error_response("bad_request",
                          (wait ? std::string("wait") : std::string("status")) +
                              " requires a \"job\" id");
  }
  const std::uint64_t job_id = request.at("job").as_u64();
  if (!service_.poll(job_id)) {
    return error_response("unknown_job", "no job with id " + std::to_string(job_id));
  }
  if (wait) {
    service_.wait(job_id);
  }
  return job_status_response(job_id);
}

Json ProtocolHandler::job_status_response(std::uint64_t job_id) {
  const std::optional<JobStatus> status = service_.poll(job_id);
  if (!status) {
    return error_response("unknown_job", "no job with id " + std::to_string(job_id));
  }
  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("job", Json(job_id));
  response.set("state", Json(job_state_name(status->state)));
  response.set("priority", Json(job_priority_name(status->priority)));
  const std::optional<JobResult> result = service_.result(job_id);
  if (result) {
    if (result->state == JobState::kDone) {
      std::size_t num_measured = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = job_measured_.find(job_id);
        if (it != job_measured_.end()) {
          num_measured = it->second;
        }
      }
      response.set("result", job_result_to_json(*result, num_measured));
    } else if (result->state == JobState::kFailed) {
      response.set("detail", Json(result->error));
    }
  }
  return response;
}

}  // namespace rqsim
