#include "service/protocol.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/version.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/trace.hpp"

namespace rqsim {

namespace {

Json error_response(const std::string& code, const std::string& detail) {
  Json response = Json::object();
  response.set("ok", Json(false));
  response.set("error", Json(code));
  response.set("detail", Json(detail));
  return response;
}

ExecutionMode mode_from_string(const std::string& mode) {
  if (mode == "baseline") {
    return ExecutionMode::kBaseline;
  }
  if (mode == "cached") {
    return ExecutionMode::kCachedReordered;
  }
  if (mode == "unordered") {
    return ExecutionMode::kCachedUnordered;
  }
  throw Error("unknown mode '" + mode + "' (baseline | cached | unordered)");
}

JobPriority priority_from_string(const std::string& priority) {
  if (priority == "low") {
    return JobPriority::kLow;
  }
  if (priority == "normal") {
    return JobPriority::kNormal;
  }
  if (priority == "high") {
    return JobPriority::kHigh;
  }
  throw Error("unknown priority '" + priority + "' (low | normal | high)");
}

/// The process's monotonic clock in microseconds. Wire clocks are µs (not
/// ns) because Json numbers are doubles: µs stay exactly representable for
/// centuries of uptime, ns only for ~104 days.
std::uint64_t clock_us_now() { return telemetry::now_ns() / 1000; }

void set_quantiles(Json& hist, const std::vector<std::uint64_t>& buckets,
                   std::uint64_t count) {
  hist.set("p50", Json(telemetry::histogram_quantile(buckets, count, 0.50)));
  hist.set("p90", Json(telemetry::histogram_quantile(buckets, count, 0.90)));
  hist.set("p99", Json(telemetry::histogram_quantile(buckets, count, 0.99)));
}

Json latency_hist_to_json(const telemetry::LatencyHistogram& hist) {
  Json json = Json::object();
  json.set("count", Json(hist.count));
  json.set("sum", Json(hist.sum));
  Json buckets = Json::array();
  for (const std::uint64_t bucket : hist.buckets) {
    buckets.push_back(Json(bucket));
  }
  json.set("buckets", std::move(buckets));
  set_quantiles(json, hist.buckets, hist.count);
  return json;
}

telemetry::LatencyHistogram latency_hist_from_json(const Json& json) {
  telemetry::LatencyHistogram hist;
  if (!json.is_object()) {
    return hist;
  }
  hist.count = json.get_u64("count", 0);
  hist.sum = json.get_u64("sum", 0);
  hist.buckets.clear();
  if (json.has("buckets")) {
    for (const Json& bucket : json.at("buckets").as_array()) {
      hist.buckets.push_back(bucket.as_u64());
    }
  }
  hist.buckets.resize(telemetry::kHistogramBuckets, 0);
  return hist;
}

Json tenant_slo_to_json(const telemetry::TenantSlo& slo) {
  Json json = Json::object();
  json.set("queue_us", latency_hist_to_json(slo.queue_us));
  json.set("exec_us", latency_hist_to_json(slo.exec_us));
  json.set("e2e_us", latency_hist_to_json(slo.e2e_us));
  Json exemplars = Json::array();
  for (const telemetry::SloExemplar& ex : slo.exemplars) {
    Json entry = Json::object();
    entry.set("job", Json(ex.job_id));
    entry.set("trace_id", Json(telemetry::trace_id_to_hex(ex.trace_id)));
    entry.set("e2e_us", Json(ex.e2e_us));
    exemplars.push_back(std::move(entry));
  }
  json.set("exemplars", std::move(exemplars));
  return json;
}

telemetry::TenantSlo tenant_slo_from_json(const Json& json) {
  telemetry::TenantSlo slo;
  if (!json.is_object()) {
    return slo;
  }
  if (json.has("queue_us")) slo.queue_us = latency_hist_from_json(json.at("queue_us"));
  if (json.has("exec_us")) slo.exec_us = latency_hist_from_json(json.at("exec_us"));
  if (json.has("e2e_us")) slo.e2e_us = latency_hist_from_json(json.at("e2e_us"));
  if (json.has("exemplars") && json.at("exemplars").is_array()) {
    for (const Json& entry : json.at("exemplars").as_array()) {
      if (!entry.is_object()) continue;
      telemetry::SloExemplar ex;
      ex.job_id = entry.get_u64("job", 0);
      ex.trace_id = telemetry::trace_id_from_hex(entry.get_string("trace_id", ""));
      ex.e2e_us = entry.get_u64("e2e_us", 0);
      slo.exemplars.push_back(ex);
    }
  }
  return slo;
}

}  // namespace

Json slo_to_json(const telemetry::SloTracker& slo) {
  Json json = Json::object();
  Json tenants = Json::object();
  for (const auto& [name, tenant_slo] : slo.tenants) {
    tenants.set(name, tenant_slo_to_json(tenant_slo));
  }
  json.set("tenants", std::move(tenants));
  json.set("total", tenant_slo_to_json(slo.total));
  return json;
}

telemetry::SloTracker slo_from_json(const Json& json) {
  telemetry::SloTracker slo;
  if (!json.is_object()) {
    return slo;
  }
  if (json.has("tenants") && json.at("tenants").is_object()) {
    for (const auto& [name, tenant_json] : json.at("tenants").as_object()) {
      slo.tenants[name] = tenant_slo_from_json(tenant_json);
    }
  }
  if (json.has("total")) {
    slo.total = tenant_slo_from_json(json.at("total"));
  }
  return slo;
}

Json oversized_line_error() {
  return error_response("oversized_line",
                        "request line exceeds " + std::to_string(kMaxLineBytes) +
                            " bytes; frame discarded");
}

Json workload_to_json(const WorkloadSpec& spec) {
  Json json = Json::object();
  if (!spec.circuit_spec.empty()) {
    json.set("circuit", Json(spec.circuit_spec));
  }
  if (!spec.qasm.empty()) {
    json.set("qasm", Json(spec.qasm));
  }
  json.set("device", Json(spec.device));
  if (spec.device_qubits > 0) {
    json.set("qubits", Json(static_cast<std::uint64_t>(spec.device_qubits)));
  }
  json.set("rate", Json(spec.device_rate));
  json.set("scale", Json(spec.noise_scale));
  json.set("no_transpile", Json(spec.no_transpile));
  return json;
}

WorkloadSpec workload_from_json(const Json& json) {
  WorkloadSpec spec;
  spec.circuit_spec = json.get_string("circuit", "");
  spec.qasm = json.get_string("qasm", "");
  spec.device = json.get_string("device", "yorktown");
  spec.device_qubits = static_cast<unsigned>(json.get_u64("qubits", 0));
  spec.device_rate = json.get_number("rate", 1e-3);
  spec.noise_scale = json.get_number("scale", 1.0);
  spec.no_transpile = json.get_bool("no_transpile", false);
  return spec;
}

Json make_submit_request(const WorkloadSpec& workload, const SubmitParams& params) {
  Json request = Json::object();
  request.set("op", Json("submit"));
  request.set("workload", workload_to_json(workload));
  request.set("trials", Json(static_cast<std::uint64_t>(params.trials)));
  request.set("seed", Json(params.seed));
  request.set("mode", Json(params.mode));
  request.set("max_states", Json(static_cast<std::uint64_t>(params.max_states)));
  request.set("threads", Json(static_cast<std::uint64_t>(params.threads)));
  request.set("priority", Json(params.priority));
  request.set("analyze", Json(params.analyze));
  request.set("fuse", Json(params.fuse));
  request.set("frames", Json(params.frames));
  if (!params.tenant.empty()) {
    request.set("tenant", Json(params.tenant));
  }
  if (!params.trace_id.empty()) {
    request.set("trace_id", Json(params.trace_id));
  }
  return request;
}

Json metrics_snapshot_to_json(const telemetry::MetricsSnapshot& snapshot) {
  Json json = Json::object();
  for (const telemetry::MetricValue& metric : snapshot.metrics) {
    if (metric.kind == telemetry::MetricKind::kHistogram) {
      Json hist = Json::object();
      hist.set("count", Json(metric.count));
      hist.set("sum", Json(metric.sum));
      Json buckets = Json::array();
      for (const std::uint64_t bucket : metric.buckets) {
        buckets.push_back(Json(bucket));
      }
      hist.set("buckets", std::move(buckets));
      set_quantiles(hist, metric.buckets, metric.count);
      json.set(metric.name, std::move(hist));
    } else if (metric.kind == telemetry::MetricKind::kMaxGauge) {
      Json gauge = Json::object();
      gauge.set("max", Json(metric.value));
      json.set(metric.name, std::move(gauge));
    } else {
      json.set(metric.name, Json(metric.value));
    }
  }
  return json;
}

telemetry::MetricsSnapshot metrics_snapshot_from_json(const Json& json) {
  telemetry::MetricsSnapshot snapshot;
  if (!json.is_object()) {
    return snapshot;
  }
  for (const auto& [name, value] : json.as_object()) {
    telemetry::MetricValue metric;
    metric.name = name;
    if (value.is_number()) {
      metric.kind = telemetry::MetricKind::kCounter;
      metric.value = value.as_u64();
    } else if (value.is_object() && value.has("max")) {
      metric.kind = telemetry::MetricKind::kMaxGauge;
      metric.value = value.at("max").as_u64();
    } else if (value.is_object() && value.has("buckets")) {
      metric.kind = telemetry::MetricKind::kHistogram;
      metric.count = value.get_u64("count", 0);
      metric.sum = value.get_u64("sum", 0);
      for (const Json& bucket : value.at("buckets").as_array()) {
        metric.buckets.push_back(bucket.as_u64());
      }
    } else {
      continue;  // unknown shape from a newer/older peer: skip, don't fail
    }
    snapshot.metrics.push_back(std::move(metric));
  }
  return snapshot;
}

Json job_result_to_json(const JobResult& result, std::size_t num_measured) {
  Json json = Json::object();
  json.set("ops", Json(result.run.ops));
  json.set("baseline_ops", Json(result.run.baseline_ops));
  json.set("normalized_computation", Json(result.run.normalized_computation));
  json.set("max_live_states", Json(result.run.max_live_states));
  json.set("mean_errors_per_trial", Json(result.run.trial_stats.mean_errors));
  json.set("queue_ms", Json(result.queue_ms));
  json.set("exec_ms", Json(result.exec_ms));
  if (result.trace_id != 0) {
    json.set("trace_id", Json(telemetry::trace_id_to_hex(result.trace_id)));
  }
  json.set("batch_size", Json(result.batch_size));
  json.set("batch_ops", Json(result.batch_ops));
  json.set("solo_ops", Json(result.solo_ops));
  {
    const TelemetrySummary& telem = result.run.telemetry;
    Json summary = Json::object();
    summary.set("measured", Json(telem.measured));
    summary.set("measured_ops", Json(telem.measured_ops));
    summary.set("ops_saved_vs_baseline", Json(telem.ops_saved_vs_baseline));
    summary.set("prefix_cache_hit_ratio", Json(telem.prefix_cache_hit_ratio));
    summary.set("wall_ms", Json(telem.wall_ms));
    summary.set("steals", Json(telem.steals));
    summary.set("inline_fallbacks", Json(telem.inline_fallbacks));
    summary.set("pool_reuses", Json(telem.pool_reuses));
    summary.set("pool_allocs", Json(telem.pool_allocs));
    summary.set("peak_live_states", Json(telem.peak_live_states));
    summary.set("frame_collapsed_trials", Json(telem.frame_collapsed_trials));
    summary.set("frame_ops", Json(telem.frame_ops));
    summary.set("uncomputations", Json(telem.uncomputations));
    json.set("telemetry", std::move(summary));
  }
  if (!result.run.histogram.empty()) {
    Json histogram = Json::object();
    for (const auto& [outcome, count] : result.run.histogram) {
      histogram.set(to_bitstring(outcome, static_cast<unsigned>(num_measured)),
                    Json(count));
    }
    json.set("histogram", std::move(histogram));
  }
  if (!result.run.observable_means.empty()) {
    Json means = Json::array();
    for (const double mean : result.run.observable_means) {
      means.push_back(Json(mean));
    }
    json.set("observable_means", std::move(means));
  }
  return json;
}

std::string ProtocolHandler::handle_line(const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const Error& e) {
    return error_response("bad_request", e.what()).dump();
  }
  return handle(request).dump();
}

Json ProtocolHandler::handle(const Json& request) {
  try {
    if (!request.is_object()) {
      return error_response("bad_request", "request must be a JSON object");
    }
    const std::string op = request.get_string("op", "");
    if (op == "ping") {
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("pong", Json(true));
      // Monotonic clock sample: callers bracket the ping with their own
      // clock reads to estimate this process's clock offset (trace-merge
      // skew correction).
      response.set("clock_us", Json(clock_us_now()));
      return response;
    }
    if (op == "submit") {
      return handle_submit(request);
    }
    if (op == "status") {
      return handle_status(request, /*wait=*/false);
    }
    if (op == "wait") {
      return handle_status(request, /*wait=*/true);
    }
    if (op == "cancel") {
      if (!request.has("job")) {
        return error_response("bad_request", "cancel requires a \"job\" id");
      }
      const std::uint64_t job_id = request.at("job").as_u64();
      const bool cancelled = service_.cancel(job_id);
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("job", Json(job_id));
      response.set("cancelled", Json(cancelled));
      return response;
    }
    if (op == "stats") {
      const ServiceStats stats = service_.stats();
      Json body = Json::object();
      body.set("submitted", Json(stats.submitted));
      body.set("rejected", Json(stats.rejected));
      body.set("completed", Json(stats.completed));
      body.set("failed", Json(stats.failed));
      body.set("cancelled", Json(stats.cancelled));
      body.set("merged_batches", Json(stats.merged_batches));
      body.set("merged_jobs", Json(stats.merged_jobs));
      body.set("merged_batch_ops", Json(stats.merged_batch_ops));
      body.set("merged_solo_ops", Json(stats.merged_solo_ops));
      body.set("merged_cross_tenant_batches", Json(stats.merged_cross_tenant_batches));
      body.set("merged_cross_tenant_jobs", Json(stats.merged_cross_tenant_jobs));
      body.set("queued_now", Json(stats.queued_now));
      body.set("running_now", Json(stats.running_now));
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("stats", std::move(body));
      // Full process-wide metrics snapshot (empty object when telemetry is
      // compiled out or disabled): registry counters, gauges, histograms.
      response.set("telemetry",
                   metrics_snapshot_to_json(telemetry::snapshot_metrics()));
      response.set("slo", slo_to_json(service_.slo_snapshot()));
      Json build = Json::object();
      build.set("version", Json(kVersion));
      build.set("uptime_ms", Json(telemetry::process_uptime_ms()));
      response.set("build", std::move(build));
      return response;
    }
    if (op == "trace") {
      const std::string action = request.get_string("action", "collect");
      Json response = Json::object();
      response.set("ok", Json(true));
      if (action == "start") {
        telemetry::start_tracing();
        response.set("tracing", Json(true));
        return response;
      }
      if (action == "stop") {
        telemetry::stop_tracing();
        response.set("tracing", Json(false));
        return response;
      }
      if (action == "collect") {
        // Collect implies stop: export expects quiescent buffers, and a
        // registry still admitting events would race the serialization.
        telemetry::stop_tracing();
        response.set("tracing", Json(false));
        response.set("trace", Json::parse(telemetry::trace_to_json()));
        response.set("epoch_us", Json(telemetry::trace_epoch_ns() / 1000));
        response.set("clock_us", Json(clock_us_now()));
        response.set("dropped_events", Json(telemetry::trace_dropped_events()));
        return response;
      }
      return error_response("bad_request", "unknown trace action '" + action +
                                               "' (start | stop | collect)");
    }
    if (op == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("stopping", Json(true));
      return response;
    }
    return error_response("bad_request", "unknown op '" + op + "'");
  } catch (const Error& e) {
    return error_response("bad_request", e.what());
  }
}

bool ProtocolHandler::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

Json ProtocolHandler::handle_submit(const Json& request) {
  JobSpec spec;
  std::size_t num_measured = 0;
  try {
    RQSIM_CHECK(request.has("workload"), "submit: missing 'workload'");
    Workload workload = build_workload(workload_from_json(request.at("workload")));
    num_measured = workload.circuit.num_measured();
    spec.circuit = std::move(workload.circuit);
    spec.noise = std::move(workload.noise);
    spec.config.num_trials = static_cast<std::size_t>(request.get_u64("trials", 1024));
    spec.config.seed = request.get_u64("seed", 1);
    spec.config.mode = mode_from_string(request.get_string("mode", "cached"));
    spec.config.max_states =
        static_cast<std::size_t>(request.get_u64("max_states", 0));
    spec.config.fuse_gates = request.get_bool("fuse", false);
    spec.config.frame_collapse = request.get_bool("frames", false);
    spec.num_threads = static_cast<std::size_t>(request.get_u64("threads", 1));
    spec.analyze_only = request.get_bool("analyze", false);
    spec.priority = priority_from_string(request.get_string("priority", "normal"));
    spec.tenant = request.get_string("tenant", "");
    // Propagated id (router / client) or minted here: every accepted job
    // has a trace identity, whether or not anyone is recording spans.
    spec.trace_id =
        telemetry::trace_id_from_hex(request.get_string("trace_id", ""));
    if (spec.trace_id == 0) {
      spec.trace_id = telemetry::mint_trace_id();
    }
  } catch (const Error& e) {
    return error_response("invalid", e.what());
  }

  const std::uint64_t trace_id = spec.trace_id;
  const SubmitOutcome outcome = service_.try_submit(std::move(spec));
  switch (outcome.status) {
    case SubmitStatus::kAccepted: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        job_measured_[outcome.job_id] = num_measured;
      }
      Json response = Json::object();
      response.set("ok", Json(true));
      response.set("job", Json(outcome.job_id));
      response.set("state", Json("queued"));
      response.set("trace_id", Json(telemetry::trace_id_to_hex(trace_id)));
      return response;
    }
    case SubmitStatus::kQueueFull:
      return error_response("queue_full", outcome.error);
    case SubmitStatus::kInvalid:
      return error_response("invalid", outcome.error);
    case SubmitStatus::kShutdown:
      return error_response("shutdown", outcome.error);
  }
  return error_response("internal", "unreachable submit status");
}

Json ProtocolHandler::handle_status(const Json& request, bool wait) {
  if (!request.has("job")) {
    return error_response("bad_request",
                          (wait ? std::string("wait") : std::string("status")) +
                              " requires a \"job\" id");
  }
  const std::uint64_t job_id = request.at("job").as_u64();
  if (!service_.poll(job_id)) {
    return error_response("unknown_job", "no job with id " + std::to_string(job_id));
  }
  if (wait) {
    service_.wait(job_id);
  }
  return job_status_response(job_id);
}

Json ProtocolHandler::job_status_response(std::uint64_t job_id) {
  const std::optional<JobStatus> status = service_.poll(job_id);
  if (!status) {
    return error_response("unknown_job", "no job with id " + std::to_string(job_id));
  }
  Json response = Json::object();
  response.set("ok", Json(true));
  response.set("job", Json(job_id));
  response.set("state", Json(job_state_name(status->state)));
  response.set("priority", Json(job_priority_name(status->priority)));
  const std::optional<JobResult> result = service_.result(job_id);
  if (result) {
    if (result->state == JobState::kDone) {
      std::size_t num_measured = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = job_measured_.find(job_id);
        if (it != job_measured_.end()) {
          num_measured = it->second;
        }
      }
      response.set("result", job_result_to_json(*result, num_measured));
    } else if (result->state == JobState::kFailed) {
      response.set("detail", Json(result->error));
    }
  }
  return response;
}

}  // namespace rqsim
