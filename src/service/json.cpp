#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace rqsim {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw Error(std::string("json: value is not ") + wanted);
}

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
  } else if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  } else {
    out += "null";  // JSON has no inf/nan
  }
}

struct Parser {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const std::string& message) {
    throw Error("json: parse error: " + message);
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  char peek() {
    if (p >= end) {
      fail("unexpected end of input");
    }
    return *p;
  }

  void expect(char c) {
    if (p >= end || *p != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++p;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) >= n && std::memcmp(p, lit, n) == 0) {
      p += n;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (p >= end) {
        fail("unterminated string");
      }
      const char c = *p++;
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p >= end) {
        fail("unterminated escape");
      }
      const char e = *p++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end - p < 4) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are passed through as-is;
          // the protocol never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_value(int depth) {
    if (depth > 64) {
      fail("nesting too deep");
    }
    skip_ws();
    const char c = peek();
    if (c == '"') {
      return Json(parse_string());
    }
    if (c == '{') {
      ++p;
      Json::Object obj;
      skip_ws();
      if (peek() == '}') {
        ++p;
        return Json(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj[std::move(key)] = parse_value(depth + 1);
        skip_ws();
        const char sep = peek();
        if (sep == ',') {
          ++p;
          continue;
        }
        expect('}');
        return Json(std::move(obj));
      }
    }
    if (c == '[') {
      ++p;
      Json::Array arr;
      skip_ws();
      if (peek() == ']') {
        ++p;
        return Json(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        const char sep = peek();
        if (sep == ',') {
          ++p;
          continue;
        }
        expect(']');
        return Json(std::move(arr));
      }
    }
    if (consume_literal("true")) {
      return Json(true);
    }
    if (consume_literal("false")) {
      return Json(false);
    }
    if (consume_literal("null")) {
      return Json();
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      char* num_end = nullptr;
      const double value = std::strtod(p, &num_end);
      if (num_end == p) {
        fail("bad number");
      }
      p = num_end;
      return Json(value);
    }
    fail(std::string("unexpected character '") + c + "'");
  }
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    type_error("a bool");
  }
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) {
    type_error("a number");
  }
  return number_;
}

std::uint64_t Json::as_u64() const {
  const double v = as_number();
  if (v < 0.0 || v != std::floor(v)) {
    type_error("a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    type_error("a string");
  }
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) {
    type_error("an array");
  }
  return array_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::kArray) {
    type_error("an array");
  }
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) {
    type_error("an object");
  }
  return object_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::kObject) {
    type_error("an object");
  }
  return object_;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw Error("json: missing key '" + key + "'");
  }
  return it->second;
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
  }
  as_object()[key] = std::move(value);
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  return has(key) && !at(key).is_null() ? at(key).as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  return has(key) && !at(key).is_null() ? at(key).as_number() : fallback;
}

std::uint64_t Json::get_u64(const std::string& key, std::uint64_t fallback) const {
  return has(key) && !at(key).is_null() ? at(key).as_u64() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return has(key) && !at(key).is_null() ? at(key).as_bool() : fallback;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
  }
  as_array().push_back(std::move(value));
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        out += v.dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        dump_string(key, out);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  Json value = parser.parse_value(0);
  parser.skip_ws();
  if (parser.p != parser.end) {
    parser.fail("trailing content after value");
  }
  return value;
}

}  // namespace rqsim
