// In-process simulation service: a bounded priority job queue drained by a
// worker pool, with cross-job batch planning.
//
// Lifecycle: submit() validates a JobSpec and enqueues it (rejecting with
// kQueueFull when the bounded queue is at capacity — the service's
// backpressure signal; clients retry or shed load). Workers claim the
// highest-priority queued job, then scan the remaining queue for jobs that
// are batch-compatible with it (service/job.hpp) and execute the whole
// group as one merged schedule (service/batch.hpp). poll() is a cheap
// state snapshot, wait() blocks until the job is terminal, cancel()
// removes a job that is still queued (a job already claimed by a worker
// runs to completion — simulation is not interruptible mid-schedule).
//
// With num_workers == 0 the service never starts threads; run_pending()
// drains the queue on the caller's thread. Tests and single-threaded
// embeddings use this for deterministic scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/job.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/slo.hpp"

namespace rqsim {

struct ServiceConfig {
  /// Worker threads; 0 = no threads, drain manually with run_pending().
  std::size_t num_workers = 2;

  /// Maximum number of *queued* (not yet claimed) jobs; submissions beyond
  /// this are rejected with kQueueFull.
  std::size_t queue_capacity = 256;

  /// Upper bound on jobs merged into one batch; 1 disables cross-job
  /// batching.
  std::size_t max_batch_jobs = 8;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted,   // job queued; job_id valid
  kQueueFull,  // backpressure: bounded queue at capacity
  kInvalid,    // spec failed validation; error has details
  kShutdown,   // service no longer accepts work
};

struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::uint64_t job_id = 0;
  std::string error;
};

/// Monotonic service counters (all cumulative unless suffixed _now).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // kQueueFull + kInvalid
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;

  /// Merged batches of size >= 2, jobs inside them, and their combined vs
  /// standalone op counts — (merged_solo_ops - merged_batch_ops) is the
  /// computation the batch planner eliminated beyond the paper's
  /// within-run reuse.
  std::uint64_t merged_batches = 0;
  std::uint64_t merged_jobs = 0;
  opcount_t merged_batch_ops = 0;
  opcount_t merged_solo_ops = 0;

  /// Subset of the merged batches whose jobs came from more than one
  /// distinct tenant (JobSpec::tenant) — the cross-tenant reuse the fleet
  /// router's workload-affinity sharding arranges. merged_cross_tenant_jobs
  /// / completed is the fleet's cross-tenant batch-merge hit rate.
  std::uint64_t merged_cross_tenant_batches = 0;
  std::uint64_t merged_cross_tenant_jobs = 0;

  std::size_t queued_now = 0;
  std::size_t running_now = 0;
};

class SimService {
 public:
  explicit SimService(ServiceConfig config = {});
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Validate and enqueue; never throws on rejection (status tells why).
  SubmitOutcome try_submit(JobSpec spec);

  /// Convenience wrapper: returns the job id or throws rqsim::Error.
  std::uint64_t submit(JobSpec spec);

  /// Snapshot of a job's lifecycle state; nullopt for unknown ids.
  std::optional<JobStatus> poll(std::uint64_t job_id) const;

  /// Terminal result if the job is done/failed/cancelled, else nullopt.
  std::optional<JobResult> result(std::uint64_t job_id) const;

  /// Block until the job reaches a terminal state; throws on unknown id.
  JobResult wait(std::uint64_t job_id);

  /// Remove a still-queued job. Returns false if the job is unknown,
  /// already running, or already terminal.
  bool cancel(std::uint64_t job_id);

  ServiceStats stats() const;

  /// Copy of the per-tenant latency SLO state (histograms + slow-job
  /// exemplars with trace ids), recorded at job completion.
  telemetry::SloTracker slo_snapshot() const;

  /// Drain up to `max_batches` batches on the caller's thread (intended
  /// for num_workers == 0). Returns the number of jobs executed.
  std::size_t run_pending(std::size_t max_batches = static_cast<std::size_t>(-1));

  /// Stop accepting work and join the workers (idempotent; also run by the
  /// destructor). Queued jobs that were never claimed stay kQueued.
  void shutdown();

  const ServiceConfig& config() const { return config_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::uint64_t fingerprint = 0;
    telemetry::TimePoint submitted_at;
    telemetry::TimePoint started_at;
    JobResult result;
  };

  void worker_loop();
  /// Pop the best queued job plus its batch-compatible followers
  /// (lock held). Empty result = nothing queued.
  std::vector<Job*> claim_batch_locked();
  void execute_batch_group(const std::vector<Job*>& group);
  static std::string validate_spec(const JobSpec& spec);

  ServiceConfig config_;
  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes the worker-join phase of shutdown()
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable done_cv_;   // waiters: some job reached terminal
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> queue_;   // submission order; scanned by priority
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  ServiceStats stats_;
  telemetry::SloTracker slo_;
  std::vector<std::thread> workers_;
};

}  // namespace rqsim
