// Minimal JSON value type for the service wire protocol and machine-readable
// benchmark output.
//
// Deliberately small: the newline-delimited protocol (service/protocol.hpp)
// only needs null/bool/number/string/array/object, strict parsing with
// location-free error messages, and deterministic serialization (object keys
// ordered, integers printed without an exponent). Numbers are stored as
// doubles; integral values up to 2^53 round-trip exactly, which covers every
// counter the protocol carries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rqsim {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(std::uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw rqsim::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::uint64_t as_u64() const;  // must be integral and >= 0
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object field access. `set` upgrades a null value to an object.
  bool has(const std::string& key) const;
  const Json& at(const std::string& key) const;  // throws if missing
  void set(const std::string& key, Json value);

  /// Lookup with defaults (missing key or null value yields the default).
  std::string get_string(const std::string& key, const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Append to an array value.
  void push_back(Json value);

  /// Compact single-line serialization (object keys in sorted order).
  std::string dump() const;

  /// Strict parse of exactly one JSON value (throws rqsim::Error).
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace rqsim
