// Socket transport for the JSONL protocol: a listening server wrapping a
// SimService, and a line-oriented client used by the CLI verbs, the fleet
// router (router/router.hpp) and tests.
//
// The server listens on a Unix-domain socket or a TCP port (pass port 0 to
// bind an ephemeral port and read it back with tcp_port()). Each accepted
// connection gets its own thread that reads '\n'-delimited requests and
// writes one response line per request; a {"op":"shutdown"} request stops
// the accept loop, drains open connections, and returns from run().
// Request lines longer than kMaxLineBytes (service/protocol.hpp) are
// discarded and answered with an "oversized_line" error — the connection
// stays usable because the reader re-synchronizes on the next newline.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace rqsim {

struct ServerConfig {
  /// Filesystem path of the Unix socket; empty = use TCP instead.
  std::string unix_path;

  /// TCP port on 127.0.0.1 (0 = ephemeral); ignored when unix_path is set.
  int tcp_port = 0;

  ServiceConfig service;
};

class SimServer {
 public:
  /// Binds and listens immediately (throws rqsim::Error on socket errors).
  explicit SimServer(ServerConfig config);
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Accept loop; returns after stop() or a shutdown request.
  void run();

  /// Stop the accept loop and close open connections (thread-safe).
  void stop();

  /// Actual bound TCP port (valid for TCP servers, also with tcp_port 0).
  int tcp_port() const { return tcp_port_; }

  /// Human-readable endpoint ("unix:/path" or "tcp:127.0.0.1:port").
  std::string endpoint() const;

  SimService& service() { return service_; }

 private:
  void handle_connection(int fd);

  ServerConfig config_;
  SimService service_;
  ProtocolHandler handler_;
  std::atomic<int> listen_fd_{-1};
  int tcp_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::vector<int> open_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Connection/request robustness policy of a ServiceClient. Transient
/// connect failures (refused / reset / timed out — a backend restarting or
/// briefly overloaded) are retried with bounded exponential backoff; a slow
/// or wedged peer is bounded by the I/O timeout instead of hanging the
/// caller forever. The fleet router reuses this policy for backend calls.
struct ClientOptions {
  /// Bound on each connect() attempt; 0 = block indefinitely.
  int connect_timeout_ms = 5000;

  /// Bound on each request/response round trip once connected; 0 = none.
  /// Leave 0 when issuing blocking `wait` requests — a long simulation is
  /// not a dead peer.
  int io_timeout_ms = 0;

  /// Total connect attempts (>= 1).
  int max_attempts = 3;

  /// Exponential backoff between connect attempts: initial delay doubles
  /// per retry up to the cap.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 500;
};

/// Blocking request/response client over one connection.
class ServiceClient {
 public:
  static ServiceClient connect_unix(const std::string& path,
                                    const ClientOptions& options = {});
  static ServiceClient connect_tcp(const std::string& host, int port,
                                   const ClientOptions& options = {});

  /// Parse an endpoint of the form "unix:/path", "/path" (unix), or
  /// "host:port" / ":port" (tcp) and connect.
  static ServiceClient connect(const std::string& endpoint,
                               const ClientOptions& options = {});

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// Send one request line, block for the response line. Throws
  /// rqsim::Error on transport failure (peer closed, reset, I/O timeout).
  Json request(const Json& request_json);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string read_buffer_;
};

}  // namespace rqsim
