// Socket transport for the JSONL protocol: a listening server wrapping a
// SimService, and a line-oriented client used by the CLI verbs and tests.
//
// The server listens on a Unix-domain socket or a TCP port (pass port 0 to
// bind an ephemeral port and read it back with tcp_port()). Each accepted
// connection gets its own thread that reads '\n'-delimited requests and
// writes one response line per request; a {"op":"shutdown"} request stops
// the accept loop, drains open connections, and returns from run().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace rqsim {

struct ServerConfig {
  /// Filesystem path of the Unix socket; empty = use TCP instead.
  std::string unix_path;

  /// TCP port on 127.0.0.1 (0 = ephemeral); ignored when unix_path is set.
  int tcp_port = 0;

  ServiceConfig service;
};

class SimServer {
 public:
  /// Binds and listens immediately (throws rqsim::Error on socket errors).
  explicit SimServer(ServerConfig config);
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Accept loop; returns after stop() or a shutdown request.
  void run();

  /// Stop the accept loop and close open connections (thread-safe).
  void stop();

  /// Actual bound TCP port (valid for TCP servers, also with tcp_port 0).
  int tcp_port() const { return tcp_port_; }

  /// Human-readable endpoint ("unix:/path" or "tcp:127.0.0.1:port").
  std::string endpoint() const;

  SimService& service() { return service_; }

 private:
  void handle_connection(int fd);

  ServerConfig config_;
  SimService service_;
  ProtocolHandler handler_;
  std::atomic<int> listen_fd_{-1};
  int tcp_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::vector<int> open_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Blocking request/response client over one connection.
class ServiceClient {
 public:
  static ServiceClient connect_unix(const std::string& path);
  static ServiceClient connect_tcp(const std::string& host, int port);

  /// Parse an endpoint of the form "unix:/path", "/path" (unix), or
  /// "host:port" / ":port" (tcp) and connect.
  static ServiceClient connect(const std::string& endpoint);

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ~ServiceClient();

  /// Send one request line, block for the response line.
  Json request(const Json& request_json);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string read_buffer_;
};

}  // namespace rqsim
