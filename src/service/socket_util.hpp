// Shared low-level socket plumbing for the JSONL transports.
//
// The simulation server (service/server.hpp) and the fleet router
// (router/router.hpp) both speak '\n'-delimited JSON over Unix-domain or
// loopback TCP stream sockets. This header is the one home for the raw
// syscall layer they share: listen/accept setup, connect with an optional
// timeout, full-buffer sends, and a bounded line reader that turns a
// too-long line into a recoverable protocol error instead of unbounded
// buffering. Source rule 6 (scripts/check_source_rules.sh) confines raw
// socket syscalls to src/service/ and src/router/, so every other layer
// goes through ServiceClient or these helpers.
#pragma once

#include <cstddef>
#include <string>

namespace rqsim {

/// Outcome of one bounded line read (see read_line_bounded).
enum class ReadLineStatus {
  kLine,       // `line` holds one complete frame (newline stripped)
  kEof,        // orderly close with nothing buffered
  kOversized,  // a frame exceeded max_line; it was discarded, stream resynced
  kTimeout,    // fd has SO_RCVTIMEO set and it expired mid-frame
  kError,      // connection reset / closed under us
};

/// Send the whole buffer (MSG_NOSIGNAL); throws rqsim::Error on failure.
void write_all(int fd, const std::string& data);

/// Read one '\n'-terminated line into `line` (newline and a trailing '\r'
/// stripped), carrying partial data across calls in `buffer`. A final
/// unterminated line at EOF is returned as a line. Frames longer than
/// `max_line` bytes are discarded up to their terminating newline — the
/// stream stays framed, so the caller can answer with a structured error
/// and keep serving the connection.
ReadLineStatus read_line_bounded(int fd, std::string& buffer, std::string& line,
                                 std::size_t max_line);

/// Connect to a Unix-domain / loopback-TCP stream socket. A positive
/// `timeout_ms` bounds the connect() itself (non-blocking connect + poll);
/// 0 blocks indefinitely. Throws rqsim::Error on failure.
int connect_unix_fd(const std::string& path, int timeout_ms = 0);
int connect_tcp_fd(const std::string& host, int port, int timeout_ms = 0);

/// Arm SO_RCVTIMEO/SO_SNDTIMEO on a connected socket (0 disarms). Reads
/// past the deadline surface as ReadLineStatus::kTimeout.
void set_io_timeout(int fd, int timeout_ms);

/// Bind + listen. For TCP the socket binds 127.0.0.1:`port` (0 picks an
/// ephemeral port) and `bound_port` reports the actual port. For Unix the
/// path is unlinked first (stale socket from a crashed server). Throws
/// rqsim::Error on failure.
int listen_unix(const std::string& path);
int listen_tcp(int port, int& bound_port);

}  // namespace rqsim
