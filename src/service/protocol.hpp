// Newline-delimited JSON wire protocol of the simulation service.
//
// Framing: one JSON object per '\n'-terminated line, request → response,
// strictly in order per connection. Every response carries "ok"; failures
// add a machine-readable "error" code plus a human "detail":
//
//   request                                        response
//   {"op":"ping"}                                  {"ok":true,"pong":true}
//   {"op":"submit","workload":{...},"trials":..}   {"ok":true,"job":7,"state":"queued"}
//   {"op":"status","job":7}                        {"ok":true,"job":7,"state":"done","result":{...}}
//   {"op":"wait","job":7}                          (status, but blocks until terminal)
//   {"op":"cancel","job":7}                        {"ok":true,"cancelled":true}
//   {"op":"stats"}                                 {"ok":true,"stats":{...}}
//   {"op":"trace","action":"start|stop|collect"}   {"ok":true,"tracing":...}
//   {"op":"shutdown"}                              {"ok":true,"stopping":true}
//
// Observability: ping responses carry "clock_us" (this process's monotonic
// clock) so a caller can measure clock skew; submit responses echo the
// job's "trace_id"; `trace collect` stops tracing and returns the buffered
// Chrome-trace document plus the trace epoch, for `rqsim trace-merge` to
// stitch into one fleet-wide file. `stats` responses add "build"
// (version + uptime) and "slo" (per-tenant latency histograms with
// p50/p90/p99 and slow-job exemplars).
//
// Error codes: "bad_request" (malformed JSON / unknown op / bad field),
// "invalid" (spec failed validation), "queue_full" (backpressure — the
// bounded queue rejected the submit; retry later), "unknown_job",
// "shutdown" (service no longer accepts work), "oversized_line" (a request
// frame exceeded kMaxLineBytes and was discarded; the connection stays
// framed). The fleet router (router/router.hpp) speaks the same protocol
// and adds "quota_exceeded" (tenant admission) and "no_backend" (no
// routable backend); its rejections carry a "retry_after_ms" hint.
//
// Submit requests may carry a "tenant" string: a client identity used for
// fair-share admission at the router and cross-tenant batch-merge
// accounting in the service. Absent or empty means the anonymous tenant.
//
// ProtocolHandler is transport-free: it turns one request Json into one
// response Json against a SimService. The socket server (service/server.hpp)
// and the in-process tests share it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "service/job.hpp"
#include "service/json.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "telemetry/telemetry.hpp"

namespace rqsim {

/// Hard bound on one JSONL frame, shared by SimServer, the fleet router and
/// ServiceClient. Large enough for any submit the service accepts (inline
/// QASM included); a line past this is a protocol violation, answered with
/// an "oversized_line" error while the reader resynchronizes on the next
/// newline (service/socket_util.hpp).
inline constexpr std::size_t kMaxLineBytes = 1 << 20;  // 1 MiB

/// Response-side bound used by ServiceClient. Responses are trusted (we
/// asked this peer) and can legitimately dwarf any request: a `trace
/// collect` reply embeds a whole Chrome-trace document (up to 64k events
/// per recording thread). Bounded anyway so a corrupt peer cannot balloon
/// memory without limit.
inline constexpr std::size_t kMaxResponseLineBytes = 256u << 20;  // 256 MiB

/// Canonical verb lists of the wire protocol. These are the source of truth
/// the rqsim-analyze protocol-exhaustiveness pass checks dispatch against:
/// every verb here must have an `op == "<verb>"` comparison in
/// ProtocolHandler::handle (kServiceVerbs) and in the fleet router's
/// dispatcher (kRouterVerbs, which speaks the same protocol plus the
/// drain/undrain fleet controls).
inline constexpr const char* kServiceVerbs[] = {
    "ping", "submit", "status", "wait", "cancel", "stats", "trace", "shutdown"};
inline constexpr const char* kRouterVerbs[] = {
    "ping",  "submit", "status",   "wait",  "cancel",
    "stats", "trace",  "shutdown", "drain", "undrain"};

/// Per-submit run parameters carried next to the workload description.
struct SubmitParams {
  std::size_t trials = 1024;
  std::uint64_t seed = 1;
  std::string mode = "cached";  // baseline | cached | unordered
  std::size_t max_states = 0;
  std::size_t threads = 1;
  std::string priority = "normal";  // low | normal | high
  bool analyze = false;
  bool fuse = false;
  /// Pauli-frame subtree collapse (NoisyRunConfig::frame_collapse):
  /// tree-mode parallel runs finish Clifford-propagatable trials as
  /// tracked frames instead of forked statevectors. Bitwise-identical
  /// results, fewer matvec ops.
  bool frames = false;
  std::string tenant;  // fair-share identity; empty = anonymous

  /// Distributed-trace id in lower-case hex; empty = let the receiving
  /// process mint one. The router mints at admission and forwards the same
  /// id to the backend so both processes' spans share it.
  std::string trace_id;
};

Json workload_to_json(const WorkloadSpec& spec);
WorkloadSpec workload_from_json(const Json& json);

/// Build a complete submit request line (client side).
Json make_submit_request(const WorkloadSpec& workload, const SubmitParams& params);

/// Serialize a terminal job result. `num_measured` formats histogram keys
/// as bitstrings (0 = no histogram expected).
Json job_result_to_json(const JobResult& result, std::size_t num_measured);

/// Serialize a metrics snapshot: counters and gauges become numbers,
/// histograms become {count, sum, buckets}. Used by the `stats` protocol
/// response and the `rqsim stats` CLI verb.
Json metrics_snapshot_to_json(const telemetry::MetricsSnapshot& snapshot);

/// Inverse of metrics_snapshot_to_json: rebuild a snapshot from a `stats`
/// response's telemetry block so per-backend snapshots can be merged into
/// one fleet view (telemetry::merge_snapshot). Counters serialize as plain
/// numbers, max-gauges as {"max": v}, histograms as {count, sum, buckets},
/// so every kind folds with its own rule after the round trip.
telemetry::MetricsSnapshot metrics_snapshot_from_json(const Json& json);

/// Serialize per-tenant SLO state: each tenant (plus the "total" aggregate)
/// as {queue_us, exec_us, e2e_us} latency histograms — raw log2 buckets so
/// the router can re-merge across backends, plus p50/p90/p99 snapshots —
/// and a slow-job "exemplars" list carrying job ids and hex trace ids.
Json slo_to_json(const telemetry::SloTracker& slo);

/// Inverse of slo_to_json (quantile fields are recomputed, not parsed);
/// tolerates missing/unknown fields the same way metrics_snapshot_from_json
/// does so fleets can mix protocol versions.
telemetry::SloTracker slo_from_json(const Json& json);

/// The response for a frame the handler never saw because it exceeded
/// kMaxLineBytes. Shared by SimServer and the fleet router.
Json oversized_line_error();

class ProtocolHandler {
 public:
  explicit ProtocolHandler(SimService& service) : service_(service) {}

  /// Parse one request line and produce the response line (both without
  /// the trailing '\n'). Never throws — protocol errors become "ok":false
  /// responses.
  std::string handle_line(const std::string& line);

  /// Structured form of handle_line.
  Json handle(const Json& request);

  /// True once a shutdown request was accepted (the transport should stop).
  bool shutdown_requested() const;

 private:
  Json handle_submit(const Json& request);
  Json handle_status(const Json& request, bool wait);
  Json job_status_response(std::uint64_t job_id);

  SimService& service_;
  mutable std::mutex mu_;
  bool shutdown_requested_ = false;
  // Measured-bit count per job, for histogram bitstring formatting.
  std::map<std::uint64_t, std::size_t> job_measured_;
};

}  // namespace rqsim
