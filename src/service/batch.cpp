#include "service/batch.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/kernels.hpp"
#include "sim/measure.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

namespace {

/// Where a merged-list trial came from: job index + position in that job's
/// own reordered trial list.
struct TrialOrigin {
  std::size_t job = 0;
  std::size_t local_index = 0;
};

/// Per-job sampling context threaded through the merged schedule.
struct JobStream {
  Rng rng{0};  // continues the job's trial-generation stream
  const std::vector<PauliString>* observables = nullptr;
  OutcomeHistogram histogram;
  std::vector<double> observable_sums;
  // Expectations of this job's observables at the current finish
  // checkpoint; invalidated whenever the stack changes.
  std::optional<std::vector<double>> cached_expectations;
};

/// SvBackend's statevector interpretation of the schedule stream, with
/// on_finish demultiplexed to the owning job: each job keeps its own
/// outcome-sampling Rng, histogram and observable sums, while the
/// checkpoint stack — and therefore every gate/error application — is
/// shared across the whole batch.
class MuxBackend : public ScheduleVisitor {
 public:
  MuxBackend(const CircuitContext& ctx, std::vector<JobStream>& streams,
             const std::vector<TrialOrigin>& origins, bool fuse_gates)
      : ctx_(ctx), streams_(streams), origins_(origins) {
    if (fuse_gates) {
      fusion_ = std::make_unique<FusionCache>(ctx.circuit, ctx.layering);
    }
    stack_.emplace_back(ctx.circuit.num_qubits());
  }

  void on_advance(std::size_t depth, layer_index_t from_layer,
                  layer_index_t to_layer) override {
    RQSIM_CHECK(depth == stack_.size() - 1, "MuxBackend: advance must target the top");
    if (fusion_ != nullptr) {
      apply_fused(stack_[depth], fusion_->segment(from_layer, to_layer));
    } else {
      apply_layers(ctx_, stack_[depth], from_layer, to_layer);
    }
    ops_ += ctx_.ops_in_layers(from_layer, to_layer);
    invalidate_caches();
  }

  void on_fork(std::size_t depth) override {
    RQSIM_CHECK(depth == stack_.size() - 1, "MuxBackend: fork must target the top");
    stack_.push_back(pool_.acquire_copy(stack_[depth]));
    max_live_ = std::max(max_live_, stack_.size());
    invalidate_caches();
  }

  void on_error(std::size_t depth, const ErrorEvent& event) override {
    RQSIM_CHECK(depth == stack_.size() - 1, "MuxBackend: error must target the top");
    apply_error_event(ctx_, stack_[depth], event);
    ops_ += 1;
    invalidate_caches();
  }

  void on_finish(std::size_t depth, trial_index_t trial_index,
                 const Trial& trial) override {
    RQSIM_CHECK(depth < stack_.size(), "MuxBackend: depth out of range");
    RQSIM_CHECK(trial_index < origins_.size(), "MuxBackend: trial index out of range");
    const StateVector& state = stack_[depth];
    JobStream& stream = streams_[origins_[trial_index].job];
    if (!ctx_.circuit.measured_qubits().empty()) {
      if (!cached_probs_) {
        cached_probs_ = measurement_probabilities(state, ctx_.circuit.measured_qubits());
      }
      const std::uint64_t outcome =
          sample_outcome(*cached_probs_, stream.rng) ^ trial.meas_flip_mask;
      ++stream.histogram[outcome];
    }
    if (stream.observables != nullptr && !stream.observables->empty()) {
      if (!stream.cached_expectations) {
        std::vector<double> values;
        values.reserve(stream.observables->size());
        for (const PauliString& p : *stream.observables) {
          values.push_back(expectation(state, p));
        }
        stream.cached_expectations = std::move(values);
      }
      for (std::size_t k = 0; k < stream.cached_expectations->size(); ++k) {
        stream.observable_sums[k] += (*stream.cached_expectations)[k];
      }
    }
  }

  void on_drop(std::size_t depth) override {
    RQSIM_CHECK(depth == stack_.size() - 1 && stack_.size() > 1,
                "MuxBackend: drop must pop the top (non-root) checkpoint");
    pool_.release(std::move(stack_.back()));
    stack_.pop_back();
    invalidate_caches();
  }

  opcount_t ops() const { return ops_; }
  std::size_t max_live_states() const { return max_live_; }

 private:
  void invalidate_caches() {
    cached_probs_.reset();
    for (JobStream& stream : streams_) {
      stream.cached_expectations.reset();
    }
  }

  const CircuitContext& ctx_;
  std::vector<JobStream>& streams_;
  const std::vector<TrialOrigin>& origins_;
  std::unique_ptr<FusionCache> fusion_;
  StateBufferPool pool_;
  std::vector<StateVector> stack_;
  opcount_t ops_ = 0;
  std::size_t max_live_ = 1;
  std::optional<std::vector<double>> cached_probs_;
};

}  // namespace

BatchExecution execute_batch(const std::vector<const JobSpec*>& jobs) {
  RQSIM_CHECK(!jobs.empty(), "execute_batch: empty batch");
  for (const JobSpec* spec : jobs) {
    RQSIM_CHECK(spec != nullptr, "execute_batch: null job spec");
    RQSIM_CHECK(spec->config.mode == ExecutionMode::kCachedReordered,
                "execute_batch: only kCachedReordered jobs are batchable");
    RQSIM_CHECK(batch_compatible(*jobs.front(), *spec),
                "execute_batch: jobs are not batch-compatible");
  }
  const JobSpec& lead = *jobs.front();
  lead.circuit.validate();
  RQSIM_CHECK(lead.noise.num_qubits() >= lead.circuit.num_qubits(),
              "execute_batch: noise model covers fewer qubits than the circuit");
  const CircuitContext ctx(lead.circuit);
  ScheduleOptions options;
  options.max_states = lead.config.max_states;

  // Per job, replicate run_noisy's setup exactly: seed the Rng, generate
  // the trial set, reorder it. The Rng is kept alive — its post-generation
  // state drives this job's outcome sampling during the merged walk.
  const std::size_t n = jobs.size();
  std::vector<std::vector<Trial>> job_trials(n);
  std::vector<JobStream> streams(n);
  BatchExecution out;
  out.per_job.resize(n);
  out.solo_ops.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const JobSpec& spec = *jobs[j];
    streams[j].rng = Rng(spec.config.seed);
    job_trials[j] = generate_trials(spec.circuit, ctx.layering, spec.noise,
                                    spec.config.num_trials, streams[j].rng);
    reorder_trials(job_trials[j]);
    streams[j].observables = &spec.config.observables;
    streams[j].observable_sums.assign(spec.config.observables.size(), 0.0);

    CountBackend solo(ctx);
    schedule_trials(ctx, job_trials[j], solo, options);
    out.solo_ops[j] = solo.ops();
  }

  // Merge the reordered lists into one reordered list. Ties across jobs are
  // broken by (job, local index), which keeps each job's trials in exactly
  // its standalone order — the bitwise-equivalence invariant.
  std::vector<TrialOrigin> origins;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < job_trials[j].size(); ++i) {
      origins.push_back({j, i});
    }
  }
  std::sort(origins.begin(), origins.end(),
            [&](const TrialOrigin& a, const TrialOrigin& b) {
              const Trial& ta = job_trials[a.job][a.local_index];
              const Trial& tb = job_trials[b.job][b.local_index];
              if (trial_order_less(ta, tb)) {
                return true;
              }
              if (trial_order_less(tb, ta)) {
                return false;
              }
              if (a.job != b.job) {
                return a.job < b.job;
              }
              return a.local_index < b.local_index;
            });
  std::vector<Trial> merged;
  merged.reserve(origins.size());
  for (const TrialOrigin& origin : origins) {
    merged.push_back(job_trials[origin.job][origin.local_index]);
  }

  // Prove the merged schedule's invariants before touching amplitudes: the
  // merge must preserve reorder order, stack discipline, the shared MSV
  // budget, and exact op-count telescoping over the combined trial list.
  // One verifying job is enough to cover the whole batch (the schedule is
  // shared), so any requester turns it on.
  const bool verify_merged =
      std::any_of(jobs.begin(), jobs.end(),
                  [](const JobSpec* spec) { return spec->config.verify_plans; });
  if (verify_merged) {
    verify_schedule_or_throw(ctx, merged, options, "execute_batch");
  }

  MuxBackend mux(ctx, streams, origins, lead.config.fuse_gates);
  schedule_trials(ctx, merged, mux, options);
  out.batch_ops = mux.ops();

  // Attribute the merged cost proportionally to each job's solo cost, with
  // a telescoping split so the attributed shares sum exactly to batch_ops.
  opcount_t solo_total = 0;
  for (const opcount_t s : out.solo_ops) {
    solo_total += s;
  }
  opcount_t cum_solo = 0;
  opcount_t cum_attributed = 0;
  for (std::size_t j = 0; j < n; ++j) {
    NoisyRunResult& result = out.per_job[j];
    cum_solo += out.solo_ops[j];
    const opcount_t cum_share =
        solo_total == 0
            ? static_cast<opcount_t>(
                  (static_cast<unsigned __int128>(out.batch_ops) * (j + 1)) / n)
            : static_cast<opcount_t>(
                  (static_cast<unsigned __int128>(out.batch_ops) * cum_solo) /
                  solo_total);
    result.ops = cum_share - cum_attributed;
    cum_attributed = cum_share;

    result.histogram = std::move(streams[j].histogram);
    result.observable_means = std::move(streams[j].observable_sums);
    for (double& mean : result.observable_means) {
      mean /= static_cast<double>(std::max<std::size_t>(1, job_trials[j].size()));
    }
    result.max_live_states = mux.max_live_states();
    result.baseline_ops = baseline_op_count(ctx, job_trials[j]);
    result.trial_stats = compute_trial_stats(job_trials[j]);
    result.normalized_computation =
        result.baseline_ops == 0
            ? 1.0
            : static_cast<double>(result.ops) / static_cast<double>(result.baseline_ops);
  }
  return out;
}

}  // namespace rqsim
