#include "service/batch.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/backend.hpp"
#include "sched/order.hpp"
#include "sched/tree.hpp"
#include "sched/tree_exec.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trial/generator.hpp"
#include "verify/plan_verifier.hpp"

namespace rqsim {

namespace {

/// Where a merged-list trial came from: job index + position in that job's
/// own reordered trial list.
struct TrialOrigin {
  std::size_t job = 0;
  std::size_t local_index = 0;
};

/// Tree-executor sink demultiplexing the merged schedule back to jobs:
/// outcomes sample from each trial's private meas_seed and land in
/// per-trial slots; observable expectations are evaluated per finishing
/// buffer for each job represented in the group (jobs' trials are
/// consecutive within a group because the merge tie-breaks by job). The
/// final per-job reduction happens on the caller's thread, in merged
/// order — which, restricted to one job, is that job's standalone order.
class BatchSink : public TreeTrialSink {
 public:
  BatchSink(const CircuitContext& ctx, const std::vector<Trial>& trials,
            const std::vector<TrialOrigin>& origins,
            const std::vector<const std::vector<PauliString>*>& observables)
      : ctx_(ctx), trials_(trials), origins_(origins), observables_(observables) {
    sampled_ = !ctx.circuit.measured_qubits().empty();
    if (sampled_) {
      outcomes_.assign(trials.size(), 0);
    }
    expectations_.resize(trials.size());
  }

  void on_finish_group(std::size_t node, std::size_t first_trial, std::size_t count,
                       const StateVector& state,
                       const std::vector<double>* probs) override {
    (void)node;
    std::size_t cached_job = kNoIndex;
    std::vector<double> cached_values;
    for (std::size_t t = first_trial; t < first_trial + count; ++t) {
      if (sampled_) {
        Rng trial_rng(trials_[t].meas_seed);
        outcomes_[t] = sample_outcome(*probs, trial_rng) ^ trials_[t].meas_flip_mask;
      }
      const std::size_t job = origins_[t].job;
      const std::vector<PauliString>& obs = *observables_[job];
      if (obs.empty()) {
        continue;
      }
      if (job != cached_job) {
        cached_values.clear();
        cached_values.reserve(obs.size());
        for (const PauliString& pauli : obs) {
          cached_values.push_back(expectation(state, pauli));
        }
        cached_job = job;
      }
      expectations_[t] = cached_values;
    }
  }

  /// Reduce trial slots into job `j`'s histogram and observable sums,
  /// visiting the merged list in order (== the job's standalone order).
  void reduce_job(std::size_t j, OutcomeHistogram& histogram,
                  std::vector<double>& observable_sums) const {
    for (std::size_t t = 0; t < trials_.size(); ++t) {
      if (origins_[t].job != j) {
        continue;
      }
      if (sampled_) {
        ++histogram[outcomes_[t]];
      }
      for (std::size_t k = 0; k < expectations_[t].size(); ++k) {
        observable_sums[k] += expectations_[t][k];
      }
    }
  }

 private:
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  const CircuitContext& ctx_;
  const std::vector<Trial>& trials_;
  const std::vector<TrialOrigin>& origins_;
  const std::vector<const std::vector<PauliString>*>& observables_;
  bool sampled_ = false;
  std::vector<std::uint64_t> outcomes_;
  std::vector<std::vector<double>> expectations_;
};

}  // namespace

BatchExecution execute_batch(const std::vector<const JobSpec*>& jobs,
                             std::size_t num_threads) {
  // Batches write the global "sim.matvec_ops" counter; holding the scope
  // lets concurrently measured runs (run_noisy / run_noisy_parallel on
  // other service workers) detect the overlap and drop their counter delta
  // instead of absorbing this batch's ops.
  const telemetry::MeasuredRunScope run_scope;
  RQSIM_CHECK(!jobs.empty(), "execute_batch: empty batch");
  for (const JobSpec* spec : jobs) {
    RQSIM_CHECK(spec != nullptr, "execute_batch: null job spec");
    RQSIM_CHECK(spec->config.mode == ExecutionMode::kCachedReordered,
                "execute_batch: only kCachedReordered jobs are batchable");
    RQSIM_CHECK(batch_compatible(*jobs.front(), *spec),
                "execute_batch: jobs are not batch-compatible");
  }
  const JobSpec& lead = *jobs.front();
  lead.circuit.validate();
  RQSIM_CHECK(lead.noise.num_qubits() >= lead.circuit.num_qubits(),
              "execute_batch: noise model covers fewer qubits than the circuit");
  const CircuitContext ctx(lead.circuit);
  ScheduleOptions options;
  options.max_states = lead.config.max_states;

  // Planning span: trial generation, per-job reorder, cross-job merge, tree
  // build and proof — everything before amplitudes move. An optional<> so
  // the span can close exactly where execution starts without a scope block
  // around variables the execution phase still needs.
  std::optional<telemetry::TraceSpan> plan_span;
  plan_span.emplace("service.batch_plan");

  // Per job, replicate run_noisy's setup exactly: seed the Rng, generate
  // the trial set, assign the per-trial measurement seeds, reorder. The
  // seeds travel with the trials through the merge, so sampling is
  // independent of where the merged schedule finishes them.
  const std::size_t n = jobs.size();
  std::vector<std::vector<Trial>> job_trials(n);
  std::vector<const std::vector<PauliString>*> job_observables(n);
  BatchExecution out;
  out.per_job.resize(n);
  out.solo_ops.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const JobSpec& spec = *jobs[j];
    for (const PauliString& pauli : spec.config.observables) {
      RQSIM_CHECK(pauli.min_qubits() <= lead.circuit.num_qubits(),
                  "execute_batch: observable acts on qubits beyond the circuit");
    }
    Rng rng(spec.config.seed);
    job_trials[j] = generate_trials(spec.circuit, ctx.layering, spec.noise,
                                    spec.config.num_trials, rng);
    assign_measurement_seeds(job_trials[j], rng);
    reorder_trials(job_trials[j]);
    job_observables[j] = &spec.config.observables;

    CountBackend solo(ctx);
    schedule_trials(ctx, job_trials[j], solo, options);
    out.solo_ops[j] = solo.ops();
  }

  // Merge the reordered lists into one reordered list. Ties across jobs are
  // broken by (job, local index), which keeps each job's trials in exactly
  // its standalone order — the bitwise-equivalence invariant.
  std::vector<TrialOrigin> origins;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < job_trials[j].size(); ++i) {
      origins.push_back({j, i});
    }
  }
  std::sort(origins.begin(), origins.end(),
            [&](const TrialOrigin& a, const TrialOrigin& b) {
              const Trial& ta = job_trials[a.job][a.local_index];
              const Trial& tb = job_trials[b.job][b.local_index];
              if (trial_order_less(ta, tb)) {
                return true;
              }
              if (trial_order_less(tb, ta)) {
                return false;
              }
              if (a.job != b.job) {
                return a.job < b.job;
              }
              return a.local_index < b.local_index;
            });
  std::vector<Trial> merged;
  merged.reserve(origins.size());
  for (const TrialOrigin& origin : origins) {
    merged.push_back(job_trials[origin.job][origin.local_index]);
  }

  // Build the merged prefix tree and prove it before touching amplitudes:
  // the tree-plan proof subsumes the sequential invariants (reorder order,
  // stack discipline, shared MSV budget, exact op telescoping) and pins
  // the tree to the sequential walker's stream op for op. One verifying
  // job is enough to cover the whole batch (the schedule is shared).
  const ExecTree tree = build_exec_tree(ctx, merged, options);
  const bool verify_merged =
      std::any_of(jobs.begin(), jobs.end(),
                  [](const JobSpec* spec) { return spec->config.verify_plans; });
  if (verify_merged) {
    verify_tree_plan_or_throw(ctx, merged, tree, options, "execute_batch");
  }

  plan_span.reset();
  TreeExecConfig exec_config;
  exec_config.num_threads = num_threads;
  exec_config.max_states = options.max_states;
  exec_config.fuse_gates = lead.config.fuse_gates;
  BatchSink sink(ctx, merged, origins, job_observables);
  const TreeExecStats stats = execute_tree(ctx, tree, merged, exec_config, sink);
  out.batch_ops = stats.ops;

  // Attribute the merged cost proportionally to each job's solo cost, with
  // a telescoping split so the attributed shares sum exactly to batch_ops.
  opcount_t solo_total = 0;
  for (const opcount_t s : out.solo_ops) {
    solo_total += s;
  }
  opcount_t cum_solo = 0;
  opcount_t cum_attributed = 0;
  for (std::size_t j = 0; j < n; ++j) {
    NoisyRunResult& result = out.per_job[j];
    cum_solo += out.solo_ops[j];
    const opcount_t cum_share =
        solo_total == 0
            ? static_cast<opcount_t>(
                  (static_cast<unsigned __int128>(out.batch_ops) * (j + 1)) / n)
            : static_cast<opcount_t>(
                  (static_cast<unsigned __int128>(out.batch_ops) * cum_solo) /
                  solo_total);
    result.ops = cum_share - cum_attributed;
    cum_attributed = cum_share;

    result.observable_means.assign(jobs[j]->config.observables.size(), 0.0);
    sink.reduce_job(j, result.histogram, result.observable_means);
    for (double& mean : result.observable_means) {
      mean /= static_cast<double>(std::max<std::size_t>(1, job_trials[j].size()));
    }
    result.max_live_states = tree.peak_demand;
    result.fork_copies = stats.fork_copies;
    result.baseline_ops = baseline_op_count(ctx, job_trials[j]);
    result.trial_stats = compute_trial_stats(job_trials[j]);
    result.normalized_computation =
        result.baseline_ops == 0
            ? 1.0
            : static_cast<double>(result.ops) / static_cast<double>(result.baseline_ops);
  }
  return out;
}

}  // namespace rqsim
