#include "obs/pauli_string.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/kernels.hpp"

namespace rqsim {

PauliString::PauliString(std::vector<std::pair<qubit_t, Pauli>> factors) {
  for (const auto& [q, p] : factors) {
    if (p != Pauli::I) {
      factors_.emplace_back(q, p);
    }
  }
  std::sort(factors_.begin(), factors_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < factors_.size(); ++i) {
    RQSIM_CHECK(factors_[i].first != factors_[i - 1].first,
                "PauliString: duplicate qubit");
  }
}

PauliString PauliString::from_label(const std::string& label) {
  std::vector<std::pair<qubit_t, Pauli>> factors;
  const std::size_t n = label.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = label[i];
    const auto q = static_cast<qubit_t>(n - 1 - i);
    switch (c) {
      case 'I':
      case 'i':
        break;
      case 'X':
      case 'x':
        factors.emplace_back(q, Pauli::X);
        break;
      case 'Y':
      case 'y':
        factors.emplace_back(q, Pauli::Y);
        break;
      case 'Z':
      case 'z':
        factors.emplace_back(q, Pauli::Z);
        break;
      default:
        RQSIM_CHECK(false, std::string("PauliString: bad character '") + c + "'");
    }
  }
  return PauliString(std::move(factors));
}

std::string PauliString::to_label(unsigned num_qubits) const {
  RQSIM_CHECK(num_qubits >= min_qubits(), "PauliString::to_label: label too short");
  std::string label(num_qubits, 'I');
  for (const auto& [q, p] : factors_) {
    label[num_qubits - 1 - q] = pauli_name(p)[0];
  }
  return label;
}

unsigned PauliString::min_qubits() const {
  return factors_.empty() ? 0 : factors_.back().first + 1;
}

double expectation(const StateVector& state, const PauliString& pauli) {
  RQSIM_CHECK(pauli.min_qubits() <= state.num_qubits(),
              "expectation: observable exceeds state size");
  if (pauli.is_identity()) {
    return state.norm_squared();
  }
  StateVector transformed = state;
  for (const auto& [q, p] : pauli.factors()) {
    apply_pauli(transformed, p, q);
  }
  cplx overlap = 0.0;
  for (std::size_t i = 0; i < state.dim(); ++i) {
    overlap += std::conj(state[i]) * transformed[i];
  }
  return overlap.real();
}

}  // namespace rqsim
