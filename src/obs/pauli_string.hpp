// Pauli-string observables: ⟨P⟩ estimation for noisy circuits.
//
// Quantum algorithm studies (the variational workloads the paper's intro
// motivates) evaluate circuits by Pauli-string expectation values, not
// only bitstring histograms. This module provides the observable type plus
// exact evaluation against statevectors and density matrices; the runner
// integrates it with the Monte Carlo pipeline so expectations are averaged
// over error-injection trials with the same prefix sharing.
#pragma once

#include <string>
#include <vector>

#include "linalg/pauli.hpp"
#include "sim/statevector.hpp"

namespace rqsim {

/// A tensor product of single-qubit Paulis, sparse over qubits.
class PauliString {
 public:
  PauliString() = default;

  /// From explicit (qubit, Pauli) factors; duplicate qubits rejected.
  explicit PauliString(std::vector<std::pair<qubit_t, Pauli>> factors);

  /// Parse a dense label, leftmost character = highest qubit, e.g.
  /// "XIZ" on 3 qubits = X on q2, Z on q0.
  static PauliString from_label(const std::string& label);

  /// Dense label over `num_qubits` (must cover the highest factor).
  std::string to_label(unsigned num_qubits) const;

  /// Non-identity factors, sorted by qubit.
  const std::vector<std::pair<qubit_t, Pauli>>& factors() const { return factors_; }

  bool is_identity() const { return factors_.empty(); }

  /// Highest qubit index touched + 1 (0 for identity).
  unsigned min_qubits() const;

 private:
  std::vector<std::pair<qubit_t, Pauli>> factors_;  // sorted by qubit
};

/// ⟨ψ|P|ψ⟩ — real for any state and Pauli string.
double expectation(const StateVector& state, const PauliString& pauli);

}  // namespace rqsim
