#!/bin/sh
# Lint entry point: clang-tidy over src/ (configuration in .clang-tidy)
# plus the project source rules.
#
# Usage: scripts/lint.sh [build-dir]
#
# Source-rule layer: when the build tree has the in-tree static analyzer
# (tools/analyze → <build>/tools/analyze/rqsim-analyze), that binary is the
# enforced gate — token-level lexing, lock-order and protocol passes,
# inline `rqsim-analyze: allow(...)` suppressions. Without a built
# analyzer the portable grep fallback (check_source_rules.sh) runs instead,
# covering the six source rules only.
#
# The build dir must contain compile_commands.json (exported by the tier-1
# configure; CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
#
# Exit codes: 0 = everything clean; 1 = violations; 77 = the source rules
# passed but clang-tidy is unavailable, reported as a ctest SKIP
# (SKIP_RETURN_CODE in tests/CMakeLists.txt) so minimal containers neither
# fail nor claim a tidy pass that never ran.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-$repo_root/build}"

analyzer="$build_dir/tools/analyze/rqsim-analyze"
if [ -x "$analyzer" ]; then
  "$analyzer" --root "$repo_root" || exit 1
else
  echo "lint: rqsim-analyze not built; using grep fallback" >&2
  sh "$repo_root/scripts/check_source_rules.sh" "$repo_root/src" || exit 1
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; source rules passed, tidy skipped" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lint: $build_dir/compile_commands.json missing; configure first" >&2
  echo "lint: source rules passed, tidy skipped" >&2
  exit 77
fi

files=$(find "$repo_root/src" -name '*.cpp' | sort)
status=0
for f in $files; do
  if ! clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "$f"; then
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "lint: clang-tidy clean on src/"
fi
exit "$status"
