#!/bin/sh
# Lint entry point: clang-tidy over src/ (configuration in .clang-tidy)
# plus the grep-based project source rules (check_source_rules.sh).
#
# Usage: scripts/lint.sh [build-dir]
#
# The build dir must contain compile_commands.json (exported by the tier-1
# configure; CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
#
# Exit codes: 0 = everything clean; 1 = violations; 77 = the source rules
# passed but clang-tidy is unavailable, reported as a ctest SKIP
# (SKIP_RETURN_CODE in tests/CMakeLists.txt) so minimal containers neither
# fail nor claim a tidy pass that never ran.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-$repo_root/build}"

sh "$repo_root/scripts/check_source_rules.sh" "$repo_root/src" || exit 1

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; source rules passed, tidy skipped" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lint: $build_dir/compile_commands.json missing; configure first" >&2
  echo "lint: source rules passed, tidy skipped" >&2
  exit 77
fi

files=$(find "$repo_root/src" -name '*.cpp' | sort)
status=0
for f in $files; do
  if ! clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "$f"; then
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "lint: clang-tidy clean on src/"
fi
exit "$status"
