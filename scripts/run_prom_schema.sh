#!/bin/sh
# prom_schema ctest driver: scrape a live service with `rqsim stats --prom`
# and validate the output against the Prometheus text exposition grammar
# (scripts/validate_prom.py): HELP/TYPE pairs, sample-line syntax, cumulative
# histogram buckets ending in +Inf == _count, and non-decreasing summary
# quantiles. A job is executed first so the SLO summaries and exemplar
# gauges are populated, then the scrape is asserted to carry them.
#
# Usage: scripts/run_prom_schema.sh <rqsim-binary> [work-dir]
# Exits 77 (ctest SKIP) when python3 is unavailable.
set -u

if [ $# -lt 1 ]; then
  echo "usage: run_prom_schema.sh <rqsim-binary> [work-dir]" >&2
  exit 2
fi
rqsim="$1"
work_dir="${2:-.}"
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if ! command -v python3 >/dev/null 2>&1; then
  echo "prom_schema: python3 not found; skipping" >&2
  exit 77
fi

sock_dir="$work_dir/prom_schema"
rm -rf "$sock_dir"
mkdir -p "$sock_dir"
sock="$sock_dir/service.sock"
scrape="$sock_dir/exposition.txt"

"$rqsim" serve --socket "$sock" --workers 1 >"$sock_dir/serve.log" 2>&1 &
server_pid=$!
cleanup() {
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "prom_schema: service socket never appeared" >&2
    exit 1
  fi
  sleep 0.1
done

"$rqsim" submit --socket "$sock" --circuit ghz:4 --trials 256 --seed 11 \
  --tenant alice --wait >/dev/null || exit 1
"$rqsim" stats --socket "$sock" --prom >"$scrape" || exit 1
"$rqsim" shutdown --socket "$sock" >/dev/null || exit 1
trap - EXIT INT TERM
cleanup

python3 "$repo_root/scripts/validate_prom.py" "$scrape" || exit 1

# Beyond the grammar: the scrape must carry the build gauge, at least one
# registry histogram, and the per-tenant SLO summary with its exemplar.
failures=0
for needle in \
  'rqsim_build_info{version="' \
  '# TYPE rqsim_slo_e2e_us summary' \
  'rqsim_slo_e2e_us{tenant="alice",quantile="0.99"}' \
  'rqsim_slo_exemplar_e2e_us{tenant="alice",job="' \
  'trace_id="'; do
  if ! grep -Fq "$needle" "$scrape"; then
    echo "prom_schema: missing $needle" >&2
    failures=1
  fi
done
if ! grep -Eq '^# TYPE rqsim_[a-z0-9_]+ histogram$' "$scrape"; then
  echo "prom_schema: no registry histogram in scrape" >&2
  failures=1
fi
[ "$failures" -eq 0 ] && echo "prom_schema: OK"
exit "$failures"
