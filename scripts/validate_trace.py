#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (stdlib only).

Checks the subset of the trace-event format that rqsim's exporter emits
(src/telemetry/trace.cpp) and that Perfetto / chrome://tracing require to
load a file:

  * top level is an object with a "traceEvents" array;
  * every event is an object with string "name", string "ph", and numeric
    "pid"/"tid"; non-metadata events also need a numeric, non-negative "ts";
  * phases are limited to the exporter's set: B, E, i, C, M;
  * per (pid, tid) lane, B/E events are balanced and properly nested
    (every E closes the most recent open B — a stack, never negative);
  * "i" events carry scope "s", "C" events carry args.value,
    "M" metadata events are thread_name / process_name / thread_sort_index;
  * within a lane, timestamps are non-decreasing.

Exit codes: 0 = valid, 1 = invalid (details on stderr), 2 = usage/IO error.
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "C", "M"}
ALLOWED_METADATA = {"thread_name", "process_name", "thread_sort_index"}


def fail(message):
    print("validate_trace: %s" % message, file=sys.stderr)
    return 1


def validate(trace):
    if not isinstance(trace, dict):
        return fail("top level must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing 'traceEvents' array")

    # Per-lane open-B stack and last timestamp.
    stacks = {}
    last_ts = {}
    errors = 0
    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            errors += fail("%s: not an object" % where)
            continue
        name = event.get("name")
        phase = event.get("ph")
        if not isinstance(name, str) or not name:
            errors += fail("%s: missing string 'name'" % where)
            continue
        where = "event %d (%s)" % (index, name)
        if phase not in ALLOWED_PHASES:
            errors += fail("%s: unexpected phase %r" % (where, phase))
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            errors += fail("%s: missing integer pid/tid" % where)
            continue
        lane = (event["pid"], event["tid"])

        if phase == "M":
            if name not in ALLOWED_METADATA:
                errors += fail("%s: unknown metadata record" % where)
            continue

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors += fail("%s: missing non-negative numeric 'ts'" % where)
            continue
        if ts < last_ts.get(lane, 0):
            errors += fail(
                "%s: timestamp %s goes backwards in lane %s" % (where, ts, lane)
            )
        last_ts[lane] = ts

        if phase == "B":
            stacks.setdefault(lane, []).append(name)
        elif phase == "E":
            stack = stacks.get(lane, [])
            if not stack:
                errors += fail("%s: E with no open span in lane %s" % (where, lane))
            else:
                stack.pop()
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                errors += fail("%s: instant event missing scope 's'" % where)
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("value"), (int, float)
            ):
                errors += fail("%s: counter event missing args.value" % where)

    for lane, stack in stacks.items():
        if stack:
            errors += fail(
                "lane %s: %d unclosed span(s), innermost %r"
                % (lane, len(stack), stack[-1])
            )
    return 1 if errors else 0


def main(argv):
    if len(argv) != 2:
        print("usage: validate_trace.py <trace.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except OSError as error:
        print("validate_trace: cannot read %s: %s" % (argv[1], error), file=sys.stderr)
        return 2
    except ValueError as error:
        print("validate_trace: %s is not JSON: %s" % (argv[1], error), file=sys.stderr)
        return 1
    status = validate(trace)
    if status == 0:
        events = trace["traceEvents"]
        spans = sum(1 for e in events if e.get("ph") == "B")
        lanes = {
            (e.get("pid"), e.get("tid"))
            for e in events
            if e.get("ph") not in (None, "M")
        }
        print(
            "validate_trace: OK — %d events, %d spans, %d lane(s)"
            % (len(events), spans, len(lanes))
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
