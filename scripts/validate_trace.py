#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (stdlib only).

Checks the subset of the trace-event format that rqsim's exporter emits
(src/telemetry/trace.cpp) and that Perfetto / chrome://tracing require to
load a file:

  * top level is an object with a "traceEvents" array;
  * every event is an object with string "name", string "ph", and numeric
    "pid"/"tid"; non-metadata events also need a numeric, non-negative "ts";
  * phases are limited to the exporter's set: B, E, X, i, C, M;
  * per (pid, tid) lane, B/E events are balanced and properly nested
    (every E closes the most recent open B — a stack, never negative);
  * "X" complete events carry a non-negative numeric "dur"; they are exempt
    from the lane timestamp-order check because the exporter records them
    retroactively (e.g. service.queue_wait is emitted when the job starts
    executing, with a ts at enqueue time);
  * "i" events carry scope "s", "C" events carry args.value, "M" metadata
    events are thread_name / process_name / thread_sort_index /
    process_sort_index;
  * within a lane, B/E/i/C timestamps are non-decreasing.

With --expect-pids N (merged multi-process traces from `rqsim trace-merge`):
exactly N distinct pids appear, every pid that carries events has a
process_name metadata record, and pids are contiguous 1..N.

Exit codes: 0 = valid, 1 = invalid (details on stderr), 2 = usage/IO error.
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "X", "i", "C", "M"}
ALLOWED_METADATA = {
    "thread_name",
    "process_name",
    "thread_sort_index",
    "process_sort_index",
}


def fail(message):
    print("validate_trace: %s" % message, file=sys.stderr)
    return 1


def validate(trace, expect_pids=None):
    if not isinstance(trace, dict):
        return fail("top level must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing 'traceEvents' array")

    # Per-lane open-B stack and last timestamp.
    stacks = {}
    last_ts = {}
    named_pids = set()
    event_pids = set()
    errors = 0
    for index, event in enumerate(events):
        where = "event %d" % index
        if not isinstance(event, dict):
            errors += fail("%s: not an object" % where)
            continue
        name = event.get("name")
        phase = event.get("ph")
        if not isinstance(name, str) or not name:
            errors += fail("%s: missing string 'name'" % where)
            continue
        where = "event %d (%s)" % (index, name)
        if phase not in ALLOWED_PHASES:
            errors += fail("%s: unexpected phase %r" % (where, phase))
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            errors += fail("%s: missing integer pid/tid" % where)
            continue
        lane = (event["pid"], event["tid"])

        if phase == "M":
            if name not in ALLOWED_METADATA:
                errors += fail("%s: unknown metadata record" % where)
            elif name == "process_name":
                named_pids.add(event["pid"])
            continue
        event_pids.add(event["pid"])

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors += fail("%s: missing non-negative numeric 'ts'" % where)
            continue
        if phase == "X":
            # Retroactive complete event: its ts points back to when the
            # measured interval began, so it is exempt from lane ordering.
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors += fail("%s: X event missing non-negative 'dur'" % where)
            continue
        if ts < last_ts.get(lane, 0):
            errors += fail(
                "%s: timestamp %s goes backwards in lane %s" % (where, ts, lane)
            )
        last_ts[lane] = ts

        if phase == "B":
            stacks.setdefault(lane, []).append(name)
        elif phase == "E":
            stack = stacks.get(lane, [])
            if not stack:
                errors += fail("%s: E with no open span in lane %s" % (where, lane))
            else:
                stack.pop()
        elif phase == "i":
            if event.get("s") not in ("t", "p", "g"):
                errors += fail("%s: instant event missing scope 's'" % where)
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("value"), (int, float)
            ):
                errors += fail("%s: counter event missing args.value" % where)

    for lane, stack in stacks.items():
        if stack:
            errors += fail(
                "lane %s: %d unclosed span(s), innermost %r"
                % (lane, len(stack), stack[-1])
            )

    if expect_pids is not None:
        if len(named_pids) != expect_pids:
            errors += fail(
                "expected %d process_name pids, got %s"
                % (expect_pids, sorted(named_pids))
            )
        unnamed = event_pids - named_pids
        if unnamed:
            errors += fail(
                "pids with events but no process_name metadata: %s"
                % sorted(unnamed)
            )
        if named_pids and sorted(named_pids) != list(
            range(1, len(named_pids) + 1)
        ):
            errors += fail(
                "merged pids not contiguous from 1: %s" % sorted(named_pids)
            )
    return 1 if errors else 0


def main(argv):
    args = list(argv[1:])
    expect_pids = None
    if "--expect-pids" in args:
        at = args.index("--expect-pids")
        try:
            expect_pids = int(args[at + 1])
        except (IndexError, ValueError):
            print("validate_trace: --expect-pids needs an integer", file=sys.stderr)
            return 2
        del args[at : at + 2]
    if len(args) != 1:
        print(
            "usage: validate_trace.py <trace.json> [--expect-pids N]",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args[0], "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except OSError as error:
        print("validate_trace: cannot read %s: %s" % (args[0], error), file=sys.stderr)
        return 2
    except ValueError as error:
        print("validate_trace: %s is not JSON: %s" % (args[0], error), file=sys.stderr)
        return 1
    status = validate(trace, expect_pids)
    if status == 0:
        events = trace["traceEvents"]
        spans = sum(1 for e in events if e.get("ph") == "B")
        completes = sum(1 for e in events if e.get("ph") == "X")
        lanes = {
            (e.get("pid"), e.get("tid"))
            for e in events
            if e.get("ph") not in (None, "M")
        }
        print(
            "validate_trace: OK — %d events, %d spans, %d complete(s), %d lane(s)"
            % (len(events), spans, completes, len(lanes))
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
