#!/bin/sh
# Project-specific source rules, enforced with portable grep so the check
# runs on containers without clang-tidy (scripts/lint.sh always calls this,
# and falls back to it alone when the tidy binary is absent).
#
# Rule 1: no raw buffer allocation (new[], malloc & friends) for state
#         buffers outside sim/buffer_pool.* — every amplitude buffer must
#         come from StateBufferPool so checkpoints reuse memory instead of
#         page-faulting fresh hundreds-of-MiB allocations.
# Rule 2: no RNG construction outside common/rng.* — every random stream
#         must go through rqsim::Rng so trial generation stays seeded and
#         reproducible (an unseeded std::mt19937 or std::random_device
#         silently breaks the determinism the schedules are proved against).
# Rule 3: no std::thread outside the designated execution engines (the
#         work-stealing tree executor, the chunked fallback, the service
#         layer, and the intra-statevector kernel pool) — ad-hoc threads
#         bypass the banker MSV reservations and the per-trial-seed
#         determinism contract those engines enforce.
# Rule 4: no std::chrono::steady_clock or high_resolution_clock outside
#         src/telemetry/ and src/common/ (bench/ is scanned too) — every
#         measurement must go through telemetry/clock.hpp (Stopwatch,
#         clock_now) or trace spans, so timing is taken from one clock and
#         shows up in the telemetry/trace output instead of ad-hoc prints.
# Rule 5: no direct StateVector deep-copy construction (copy-init from an
#         existing vector) outside sim/buffer_pool.* — a checkpoint copy is
#         a 2^n memcpy plus a possible page-faulting allocation, so it must
#         go through StateBufferPool::acquire_copy (recycled buffers) or,
#         on the executor's fork path, CowState (copy deferred until first
#         write). Exempt: obs/pauli_string.cpp and dm/density_matrix.cpp,
#         whose scratch copies are per-call workspaces of observable /
#         density-matrix math, not checkpoints of the scheduling layer.
# Rule 6: no raw socket syscalls (::socket, ::connect, ::accept, ::bind,
#         ::listen) outside src/service/ and src/router/ — all transport
#         goes through service/socket_util.hpp so every connection gets the
#         same bounded-line framing, timeouts, and retry policy, and the
#         rest of the tree stays transport-free.
# Rule 7: no direct terminal output (printf family, std::cout/cerr/clog)
#         outside src/cli/ and src/report/ (bench/ drivers print their own
#         tables and are exempt) — services and the simulation core surface
#         information through telemetry, trace spans, or returned results,
#         never stdio. snprintf formats into a caller buffer and is allowed.
#
# Usage: scripts/check_source_rules.sh [src-dir]   (default: src)
#        scripts/check_source_rules.sh --self-test
#
# --self-test runs the grep patterns against the shared fixture corpus in
# tools/analyze/fixtures/ (the same files that pin the token-level analyzer
# in tests/analyzer_test.cpp), so the fallback and the analyzer cannot
# silently drift apart on the cases grep is able to see.
#
# NOTE: this grep fallback is the portable safety net; the enforced gate is
# the token-level analyzer (tools/analyze, the `analyze` ctest), which also
# catches classes grep cannot: alias/using-namespace RNG spellings, and it
# does not false-positive on block comments or string literals.
set -u

# Patterns shared by the tree scan and --self-test.
P1='(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]*(Amp|amp_t|std::complex)|(^|[^[:alnum:]_])(malloc|calloc|realloc)[[:space:]]*\('
P2='(^|[^[:alnum:]_])(std::mt19937|std::minstd_rand|std::random_device|std::rand|std::srand|drand48|rand48)'
P3='(^|[^[:alnum:]_])std::thread([^[:alnum:]_]|$)'
P4='(steady_clock|high_resolution_clock)'
P5='StateVector[[:space:]]+[[:alnum:]_]+[[:space:]]*=[[:space:]]*[*]?[[:alnum:]_.]+(\[[^]]*\])?[[:space:]]*;'
P6='(^|[^[:alnum:]_>:])::(socket|connect|accept|bind|listen)[[:space:]]*\('
P7='(^|[^[:alnum:]_.>])(printf|fprintf|puts|fputs|vprintf|vfprintf)[[:space:]]*\(|std::(cout|cerr|clog)'

if [ "${1:-}" = "--self-test" ]; then
  fixtures="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)/tools/analyze/fixtures"
  fail=0
  expect_hit() { # fixture pattern label
    if sed 's|//.*||' "$fixtures/$1" | grep -qE "$2"; then
      echo "self-test: OK   $3"
    else
      echo "self-test: FAIL $3 (pattern missed $1)"
      fail=1
    fi
  }
  expect_clean() { # fixture pattern label
    if sed 's|//.*||' "$fixtures/$1" | grep -qE "$2"; then
      echo "self-test: FAIL $3 (false positive on $1)"
      fail=1
    else
      echo "self-test: OK   $3"
    fi
  }
  expect_hit   rule1_raw_alloc.cpp  "$P1" 'rule 1: raw state-buffer allocation'
  expect_hit   rule2_rng.cpp        "$P2" 'rule 2: RNG construction'
  expect_hit   rule3_thread.cpp     "$P3" 'rule 3: std::thread'
  expect_hit   rule4_clock.cpp      "$P4" 'rule 4: monotonic clock'
  expect_hit   rule5_deep_copy.cpp  "$P5" 'rule 5: StateVector deep copy'
  expect_hit   rule6_socket.cpp     "$P6" 'rule 6: raw socket syscall'
  expect_hit   rule7_print.cpp      "$P7" 'rule 7: direct terminal output'
  # Documented grep blind spot: the aliased spelling (`using namespace std;
  # mt19937 gen;`) never writes `std::`, so the fallback must NOT claim it —
  # only the token-level analyzer flags it (RngAliasFixture in
  # tests/analyzer_test.cpp). If this ever starts matching, the pattern
  # grew a false-positive class; investigate before celebrating.
  expect_clean rule2_rng_alias.cpp  "$P2" 'rule 2 alias spelling stays analyzer-only'
  # A fixture with no banned identifiers in code position at all.
  expect_clean lock_cycle.cpp       "$P2" 'clean fixture produces no RNG hit'
  expect_clean lock_cycle.cpp       "$P3" 'clean fixture produces no thread hit'
  [ "$fail" -eq 0 ] && echo "check_source_rules: self-test OK"
  exit "$fail"
fi

src_dir="${1:-src}"
# Sibling bench/ tree (rule 4 covers benchmark drivers as well).
bench_dir="$(dirname "$src_dir")/bench"
[ -d "$bench_dir" ] || bench_dir=""
status=0

# Strip // line comments before matching so documentation may mention the
# banned identifiers. (Block comments are rare in this tree and reviewed by
# hand; the goal is catching real call sites, not building a C++ parser.)
# $2 is a space-separated list of path globs to exempt; $4 (optional) is a
# space-separated list of extra directories to scan beyond src_dir.
scan() {
  pattern="$1"
  excludes="$2"
  label="$3"
  extra_dirs="${4:-}"
  found=0
  for f in $(find "$src_dir" $extra_dirs -name '*.cpp' -o -name '*.hpp' | sort); do
    skip=0
    for exclude in $excludes; do
      case "$f" in
        $exclude) skip=1 ;;
      esac
    done
    [ "$skip" -eq 1 ] && continue
    hits=$(sed 's|//.*||' "$f" | grep -nE "$pattern" || true)
    if [ -n "$hits" ]; then
      echo "RULE VIOLATION ($label) in $f:"
      # Re-run with line numbers against the stripped text for context.
      sed 's|//.*||' "$f" | grep -nE "$pattern" | sed 's/^/  /'
      found=1
    fi
  done
  [ "$found" -eq 0 ] || status=1
}

scan "$P1" \
     "$src_dir/sim/buffer_pool.*" \
     'raw state-buffer allocation outside StateBufferPool'

scan "$P2" \
     "$src_dir/common/rng.*" \
     'RNG construction outside common/rng'

scan "$P3" \
     "$src_dir/sched/tree_exec.cpp $src_dir/sched/parallel.cpp $src_dir/service/* $src_dir/router/* $src_dir/sim/kernel_engine.cpp" \
     'std::thread outside the designated execution engines'

scan "$P4" \
     "$src_dir/telemetry/* $src_dir/common/*" \
     'monotonic clock use outside telemetry/clock.hpp' \
     "$bench_dir"

scan "$P5" \
     "$src_dir/sim/buffer_pool.* $src_dir/obs/pauli_string.cpp $src_dir/dm/density_matrix.cpp" \
     'StateVector deep copy outside StateBufferPool/CowState' \
     "$bench_dir"

scan "$P6" \
     "$src_dir/service/* $src_dir/router/*" \
     'raw socket syscall outside service/socket_util and router/' \
     "$bench_dir"

scan "$P7" \
     "$src_dir/cli/* $src_dir/report/*" \
     'direct terminal output outside cli/ and report/'

if [ "$status" -eq 0 ]; then
  echo "check_source_rules: OK ($src_dir)"
fi
exit "$status"
