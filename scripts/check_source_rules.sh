#!/bin/sh
# Project-specific source rules, enforced with portable grep so the check
# runs on containers without clang-tidy (scripts/lint.sh always calls this,
# and falls back to it alone when the tidy binary is absent).
#
# Rule 1: no raw buffer allocation (new[], malloc & friends) for state
#         buffers outside sim/buffer_pool.* — every amplitude buffer must
#         come from StateBufferPool so checkpoints reuse memory instead of
#         page-faulting fresh hundreds-of-MiB allocations.
# Rule 2: no RNG construction outside common/rng.* — every random stream
#         must go through rqsim::Rng so trial generation stays seeded and
#         reproducible (an unseeded std::mt19937 or std::random_device
#         silently breaks the determinism the schedules are proved against).
# Rule 3: no std::thread outside the designated execution engines (the
#         work-stealing tree executor, the chunked fallback, the service
#         layer, and the intra-statevector kernel pool) — ad-hoc threads
#         bypass the banker MSV reservations and the per-trial-seed
#         determinism contract those engines enforce.
# Rule 4: no std::chrono::steady_clock or high_resolution_clock outside
#         src/telemetry/ and src/common/ (bench/ is scanned too) — every
#         measurement must go through telemetry/clock.hpp (Stopwatch,
#         clock_now) or trace spans, so timing is taken from one clock and
#         shows up in the telemetry/trace output instead of ad-hoc prints.
# Rule 5: no direct StateVector deep-copy construction (copy-init from an
#         existing vector) outside sim/buffer_pool.* — a checkpoint copy is
#         a 2^n memcpy plus a possible page-faulting allocation, so it must
#         go through StateBufferPool::acquire_copy (recycled buffers) or,
#         on the executor's fork path, CowState (copy deferred until first
#         write). Exempt: obs/pauli_string.cpp and dm/density_matrix.cpp,
#         whose scratch copies are per-call workspaces of observable /
#         density-matrix math, not checkpoints of the scheduling layer.
# Rule 6: no raw socket syscalls (::socket, ::connect, ::accept, ::bind,
#         ::listen) outside src/service/ and src/router/ — all transport
#         goes through service/socket_util.hpp so every connection gets the
#         same bounded-line framing, timeouts, and retry policy, and the
#         rest of the tree stays transport-free.
#
# Usage: scripts/check_source_rules.sh [src-dir]   (default: src)
set -u

src_dir="${1:-src}"
# Sibling bench/ tree (rule 4 covers benchmark drivers as well).
bench_dir="$(dirname "$src_dir")/bench"
[ -d "$bench_dir" ] || bench_dir=""
status=0

# Strip // line comments before matching so documentation may mention the
# banned identifiers. (Block comments are rare in this tree and reviewed by
# hand; the goal is catching real call sites, not building a C++ parser.)
# $2 is a space-separated list of path globs to exempt; $4 (optional) is a
# space-separated list of extra directories to scan beyond src_dir.
scan() {
  pattern="$1"
  excludes="$2"
  label="$3"
  extra_dirs="${4:-}"
  found=0
  for f in $(find "$src_dir" $extra_dirs -name '*.cpp' -o -name '*.hpp' | sort); do
    skip=0
    for exclude in $excludes; do
      case "$f" in
        $exclude) skip=1 ;;
      esac
    done
    [ "$skip" -eq 1 ] && continue
    hits=$(sed 's|//.*||' "$f" | grep -nE "$pattern" || true)
    if [ -n "$hits" ]; then
      echo "RULE VIOLATION ($label) in $f:"
      # Re-run with line numbers against the stripped text for context.
      sed 's|//.*||' "$f" | grep -nE "$pattern" | sed 's/^/  /'
      found=1
    fi
  done
  [ "$found" -eq 0 ] || status=1
}

scan '(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:<]*(Amp|amp_t|std::complex)|(^|[^[:alnum:]_])(malloc|calloc|realloc)[[:space:]]*\(' \
     "$src_dir/sim/buffer_pool.*" \
     'raw state-buffer allocation outside StateBufferPool'

scan '(^|[^[:alnum:]_])(std::mt19937|std::minstd_rand|std::random_device|std::rand|std::srand|drand48|rand48)' \
     "$src_dir/common/rng.*" \
     'RNG construction outside common/rng'

scan '(^|[^[:alnum:]_])std::thread([^[:alnum:]_]|$)' \
     "$src_dir/sched/tree_exec.cpp $src_dir/sched/parallel.cpp $src_dir/service/* $src_dir/router/* $src_dir/sim/kernel_engine.cpp" \
     'std::thread outside the designated execution engines'

scan '(steady_clock|high_resolution_clock)' \
     "$src_dir/telemetry/* $src_dir/common/*" \
     'monotonic clock use outside telemetry/clock.hpp' \
     "$bench_dir"

scan 'StateVector[[:space:]]+[[:alnum:]_]+[[:space:]]*=[[:space:]]*[*]?[[:alnum:]_.]+(\[[^]]*\])?[[:space:]]*;' \
     "$src_dir/sim/buffer_pool.* $src_dir/obs/pauli_string.cpp $src_dir/dm/density_matrix.cpp" \
     'StateVector deep copy outside StateBufferPool/CowState' \
     "$bench_dir"

scan '(^|[^[:alnum:]_>:])::(socket|connect|accept|bind|listen)[[:space:]]*\(' \
     "$src_dir/service/* $src_dir/router/*" \
     'raw socket syscall outside service/socket_util and router/' \
     "$bench_dir"

if [ "$status" -eq 0 ]; then
  echo "check_source_rules: OK ($src_dir)"
fi
exit "$status"
