#!/bin/sh
# trace_schema ctest driver: produce a trace with the CLI and validate it.
#
# Runs `rqsim run --trace-out` on a Table I circuit with the parallel tree
# executor (so the trace has per-worker lanes and fork/drop/steal instants),
# then checks the file against the Chrome trace-event subset the exporter
# promises (scripts/validate_trace.py). Exits 77 (ctest SKIP) when python3
# is unavailable.
#
# Usage: scripts/run_trace_schema.sh <rqsim-binary> [work-dir]
set -u

if [ $# -lt 1 ]; then
  echo "usage: run_trace_schema.sh <rqsim-binary> [work-dir]" >&2
  exit 2
fi
rqsim="$1"
work_dir="${2:-.}"
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
trace="$work_dir/trace_schema.json"

if ! command -v python3 >/dev/null 2>&1; then
  echo "trace_schema: python3 not found; skipping" >&2
  exit 77
fi

"$rqsim" run --circuit qv:5:5 --trials 1024 --threads 4 \
  --trace-out "$trace" || exit 1

python3 "$repo_root/scripts/validate_trace.py" "$trace" || exit 1

# Beyond well-formedness: the parallel tree run must show its worker lanes
# and checkpoint fork/drop instants (steal counts are timing-dependent, so
# only the lanes and fork events are asserted).
python3 - "$trace" <<'EOF'
import json, sys

events = json.load(open(sys.argv[1]))["traceEvents"]
lanes = {
    e["args"]["name"]
    for e in events
    if e["ph"] == "M" and e["name"] == "thread_name"
}
workers = {name for name in lanes if name.startswith("tree_exec.worker-")}
instants = {e["name"] for e in events if e["ph"] == "i"}
failures = []
if len(workers) < 2:
    failures.append("expected >= 2 tree_exec worker lanes, got %s" % sorted(lanes))
for required in ("tree_exec.fork", "tree_exec.drop"):
    if required not in instants:
        failures.append("missing instant event %r (got %s)" % (required, sorted(instants)))
for failure in failures:
    print("trace_schema: %s" % failure, file=sys.stderr)
if not failures:
    print("trace_schema: %d worker lanes, instants %s" % (len(workers), sorted(instants)))
sys.exit(1 if failures else 0)
EOF
