#!/bin/sh
# trace_schema ctest driver: produce traces with the CLI and validate them.
#
# Part 1 runs `rqsim run --trace-out` on a Table I circuit with the parallel
# tree executor (so the trace has per-worker lanes and fork/drop/steal
# instants) and checks the file against the Chrome trace-event subset the
# exporter promises (scripts/validate_trace.py).
#
# Part 2 exercises the distributed path: two `rqsim serve` backends behind
# an `rqsim route` fleet router, `trace-start` over the whole fleet, two
# submits from different tenants, then `trace-merge` stitching the three
# per-process buffers (clock-skew corrected) into one file. The merged
# trace must have three named pid lanes, balanced spans per lane, and the
# router-admission / queue-wait spans joined by a shared trace_id.
#
# Exits 77 (ctest SKIP) when python3 is unavailable.
#
# Usage: scripts/run_trace_schema.sh <rqsim-binary> [work-dir]
set -u

if [ $# -lt 1 ]; then
  echo "usage: run_trace_schema.sh <rqsim-binary> [work-dir]" >&2
  exit 2
fi
rqsim="$1"
work_dir="${2:-.}"
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
trace="$work_dir/trace_schema.json"

if ! command -v python3 >/dev/null 2>&1; then
  echo "trace_schema: python3 not found; skipping" >&2
  exit 77
fi

"$rqsim" run --circuit qv:5:5 --trials 1024 --threads 4 \
  --trace-out "$trace" || exit 1

python3 "$repo_root/scripts/validate_trace.py" "$trace" || exit 1

# Beyond well-formedness: the parallel tree run must show its worker lanes
# and checkpoint fork/drop instants (steal counts are timing-dependent, so
# only the lanes and fork events are asserted).
python3 - "$trace" <<'EOF'
import json, sys

events = json.load(open(sys.argv[1]))["traceEvents"]
lanes = {
    e["args"]["name"]
    for e in events
    if e["ph"] == "M" and e["name"] == "thread_name"
}
workers = {name for name in lanes if name.startswith("tree_exec.worker-")}
instants = {e["name"] for e in events if e["ph"] == "i"}
failures = []
if len(workers) < 2:
    failures.append("expected >= 2 tree_exec worker lanes, got %s" % sorted(lanes))
for required in ("tree_exec.fork", "tree_exec.drop"):
    if required not in instants:
        failures.append("missing instant event %r (got %s)" % (required, sorted(instants)))
for failure in failures:
    print("trace_schema: %s" % failure, file=sys.stderr)
if not failures:
    print("trace_schema: %d worker lanes, instants %s" % (len(workers), sorted(instants)))
sys.exit(1 if failures else 0)
EOF
[ $? -eq 0 ] || exit 1

# ---------------------------------------------------------------------------
# Part 2: merged multi-process trace through a 2-backend fleet.
# ---------------------------------------------------------------------------

sock_dir="$work_dir/trace_schema_fleet"
rm -rf "$sock_dir"
mkdir -p "$sock_dir"
merged="$work_dir/trace_schema_merged.json"
pids=""

cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in $pids; do
    wait "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT INT TERM

"$rqsim" serve --socket "$sock_dir/b1.sock" --workers 1 >"$sock_dir/b1.log" 2>&1 &
pids="$pids $!"
"$rqsim" serve --socket "$sock_dir/b2.sock" --workers 1 >"$sock_dir/b2.log" 2>&1 &
pids="$pids $!"

wait_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "trace_schema: $1 never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}
wait_socket "$sock_dir/b1.sock"
wait_socket "$sock_dir/b2.sock"

"$rqsim" route --socket "$sock_dir/front.sock" \
  --backend "unix:$sock_dir/b1.sock" --backend "unix:$sock_dir/b2.sock" \
  >"$sock_dir/router.log" 2>&1 &
pids="$pids $!"
wait_socket "$sock_dir/front.sock"

"$rqsim" trace-start --socket "$sock_dir/front.sock" || exit 1
"$rqsim" submit --socket "$sock_dir/front.sock" --circuit ghz:4 \
  --trials 256 --seed 7 --tenant alice --wait >/dev/null || exit 1
"$rqsim" submit --socket "$sock_dir/front.sock" --circuit ghz:4 \
  --trials 256 --seed 7 --tenant bob --wait >/dev/null || exit 1
"$rqsim" trace-merge --socket "$sock_dir/front.sock" \
  --trace-out "$merged" || exit 1
"$rqsim" shutdown --socket "$sock_dir/front.sock" >/dev/null || exit 1
"$rqsim" shutdown --socket "$sock_dir/b1.sock" >/dev/null || exit 1
"$rqsim" shutdown --socket "$sock_dir/b2.sock" >/dev/null || exit 1

# Well-formedness plus the merged-trace contract: 3 contiguous named pids
# (router + 2 backends), balanced B/E per lane, X events with durations.
python3 "$repo_root/scripts/validate_trace.py" "$merged" --expect-pids 3 \
  || exit 1

# Causal linkage: the router-admission span and a backend queue-wait event
# must share a trace_id, and they must sit in different pid lanes (the
# router process vs the executing backend).
python3 - "$merged" <<'EOF'
import json, sys

events = json.load(open(sys.argv[1]))["traceEvents"]
admit = {}   # trace_id -> pid of router.admit span
queued = {}  # trace_id -> pid of service.queue_wait complete event
for e in events:
    tid = (e.get("args") or {}).get("trace_id")
    if not tid:
        continue
    if e.get("name") == "router.admit" and e.get("ph") == "B":
        admit[tid] = e["pid"]
    if e.get("name") == "service.queue_wait" and e.get("ph") == "X":
        queued[tid] = e["pid"]
linked = sorted(set(admit) & set(queued))
failures = []
if not linked:
    failures.append(
        "no trace_id links router.admit (%s) to service.queue_wait (%s)"
        % (sorted(admit), sorted(queued))
    )
elif all(admit[t] == queued[t] for t in linked):
    failures.append("linked spans never cross a process boundary")
for failure in failures:
    print("trace_schema: %s" % failure, file=sys.stderr)
if not failures:
    print("trace_schema: merged trace links %d trace_id(s) across processes"
          % len(linked))
sys.exit(1 if failures else 0)
EOF
[ $? -eq 0 ] || exit 1
trap - EXIT INT TERM
cleanup
exit 0
