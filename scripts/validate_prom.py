#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 (stdlib only).

Checks the subset `rqsim stats --prom` emits (src/report/prom.cpp):

  * every line is a `# HELP <name> <text>`, a `# TYPE <name> <type>`
    (counter | gauge | histogram | summary), or a sample
    `<name>[{label="value",...}] <number>`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
    [a-zA-Z_][a-zA-Z0-9_]*, label values use \\\\ \\" \\n escapes only;
  * every sample's base name (with histogram/summary _bucket/_sum/_count
    suffixes stripped) was announced by a preceding # TYPE;
  * each HELP/TYPE pair appears at most once per metric;
  * histograms: `le` bucket bounds strictly increase, cumulative bucket
    counts never decrease, the +Inf bucket equals _count, and _sum/_count
    are present;
  * summaries: `quantile` labels are in [0, 1] and quantile values are
    non-decreasing as the quantile increases (per label set).

Exit codes: 0 = valid, 1 = invalid (details on stderr), 2 = usage/IO error.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$"
)
TYPES = {"counter", "gauge", "histogram", "summary"}
SUFFIXES = ("_bucket", "_sum", "_count")


def fail(message):
    print("validate_prom: %s" % message, file=sys.stderr)
    return 1


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(text):
    """Return {name: value} or None if the label block is malformed."""
    if text is None or text == "":
        return {}
    labels = {}
    rest = text
    while rest:
        match = LABEL_RE.match(rest)
        if not match:
            return None
        labels[match.group(1)] = match.group(2)
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return labels


def base_name(name, types):
    for suffix in SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def validate(text):
    errors = 0
    types = {}
    helps = set()
    # (metric, frozen non-le labels) -> [(le, cumulative count)]
    buckets = {}
    counts = {}
    sums = set()
    # (metric, frozen non-quantile labels) -> [(quantile, value)]
    quantiles = {}

    for number, line in enumerate(text.splitlines(), 1):
        where = "line %d" % number
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors += fail("%s: malformed comment %r" % (where, line))
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                errors += fail("%s: bad metric name %r" % (where, name))
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TYPES:
                    errors += fail("%s: bad TYPE %r" % (where, line))
                elif name in types:
                    errors += fail("%s: duplicate TYPE for %r" % (where, name))
                else:
                    types[name] = parts[3]
            else:
                if name in helps:
                    errors += fail("%s: duplicate HELP for %r" % (where, name))
                helps.add(name)
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            errors += fail("%s: not a sample line: %r" % (where, line))
            continue
        name = match.group(1)
        labels = parse_labels(match.group(3))
        if labels is None:
            errors += fail("%s: malformed labels: %r" % (where, line))
            continue
        value = parse_value(match.group(4))
        if value is None:
            errors += fail("%s: bad sample value %r" % (where, match.group(4)))
            continue
        metric = base_name(name, types)
        if metric not in types:
            errors += fail("%s: sample %r has no preceding # TYPE" % (where, name))
            continue

        kind = types[metric]
        if kind == "histogram" and name == metric + "_bucket":
            if "le" not in labels:
                errors += fail("%s: histogram bucket without 'le'" % where)
                continue
            le = parse_value(labels["le"])
            if le is None:
                errors += fail("%s: bad le value %r" % (where, labels["le"]))
                continue
            key = (metric, frozenset(
                (k, v) for k, v in labels.items() if k != "le"))
            buckets.setdefault(key, []).append((le, value, number))
        elif name == metric + "_count":
            key = (metric, frozenset(labels.items()))
            counts[key] = (value, number)
        elif name == metric + "_sum":
            sums.add((metric, frozenset(labels.items())))
        elif kind == "summary" and "quantile" in labels:
            q = parse_value(labels["quantile"])
            if q is None or not 0.0 <= q <= 1.0:
                errors += fail(
                    "%s: quantile %r outside [0, 1]" % (where, labels["quantile"])
                )
                continue
            key = (metric, frozenset(
                (k, v) for k, v in labels.items() if k != "quantile"))
            quantiles.setdefault(key, []).append((q, value, number))

    for (metric, labelset), rows in buckets.items():
        prev_le = None
        prev_cum = None
        for le, cumulative, number in rows:
            if prev_le is not None and le <= prev_le:
                errors += fail(
                    "line %d: %s bucket le=%s not increasing" % (number, metric, le)
                )
            if prev_cum is not None and cumulative < prev_cum:
                errors += fail(
                    "line %d: %s cumulative bucket count decreases" % (number, metric)
                )
            prev_le, prev_cum = le, cumulative
        if rows and rows[-1][0] != float("inf"):
            errors += fail("%s: histogram missing +Inf bucket" % metric)
        count = counts.get((metric, labelset))
        if count is None:
            errors += fail("%s: histogram missing _count" % metric)
        elif rows and rows[-1][1] != count[0]:
            errors += fail(
                "%s: +Inf bucket %s != _count %s" % (metric, rows[-1][1], count[0])
            )
        if (metric, labelset) not in sums:
            errors += fail("%s: histogram missing _sum" % metric)

    for (metric, _), rows in quantiles.items():
        rows.sort(key=lambda row: row[0])
        for previous, current in zip(rows, rows[1:]):
            if current[1] < previous[1]:
                errors += fail(
                    "line %d: %s q=%s value %s below q=%s value %s"
                    % (current[2], metric, current[0], current[1],
                       previous[0], previous[1])
                )

    if not types:
        errors += fail("no metrics found")
    return (1 if errors else 0), len(types)


def main(argv):
    if len(argv) != 2:
        print("usage: validate_prom.py <exposition.txt>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print("validate_prom: cannot read %s: %s" % (argv[1], error), file=sys.stderr)
        return 2
    status, metrics = validate(text)
    if status == 0:
        print("validate_prom: OK — %d metric(s)" % metrics)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
