#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rqsim::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parse a `rqsim-analyze: allow(RQS001,RQS102) reason` annotation out of a
// comment body. Returns the rule set (empty if the comment is not an
// annotation).
std::set<std::string> parse_allow(const std::string& comment) {
  std::set<std::string> rules;
  const std::string key = "rqsim-analyze:";
  std::size_t pos = comment.find(key);
  if (pos == std::string::npos) return rules;
  pos += key.size();
  while (pos < comment.size() && std::isspace(static_cast<unsigned char>(comment[pos]))) ++pos;
  const std::string verb = "allow(";
  if (comment.compare(pos, verb.size(), verb) != 0) return rules;
  pos += verb.size();
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return rules;
  std::string list = comment.substr(pos, close - pos);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string rule = list.substr(start, comma - start);
    // Trim surrounding whitespace.
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front()))) rule.erase(rule.begin());
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back()))) rule.pop_back();
    if (!rule.empty()) rules.insert(rule);
    if (comma == list.size()) break;
    start = comma + 1;
  }
  return rules;
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& text)
      : text_(text) {
    out_.path = std::move(path);
  }

  LexedFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preproc();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string(0);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (ident_start(c)) {
        lex_ident_or_prefixed_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void lex_preproc() {
    const int start_line = line_;
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!body.empty() && body.back() == '\\') {
          body.pop_back();
          body.push_back(' ');
          ++line_;
          ++pos_;
          continue;  // logical line continues
        }
        break;
      }
      // Comments may trail a directive; a // comment ends the logical line
      // for our purposes (continuations after // are pathological).
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        body.push_back(' ');
        continue;
      }
      body.push_back(c);
      ++pos_;
    }
    emit(Tok::kPreproc, body, start_line);
    at_line_start_ = false;
  }

  void lex_line_comment() {
    const int start_line = line_;
    std::size_t start = pos_ + 2;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    note_comment(text_.substr(start, pos_ - start), start_line);
  }

  void lex_block_comment() {
    const int start_line = line_;
    pos_ += 2;
    std::string body;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        note_comment(body, start_line);
        return;
      }
      if (text_[pos_] == '\n') ++line_;
      body.push_back(text_[pos_]);
      ++pos_;
    }
    note_comment(body, start_line);  // unterminated: still record
  }

  void note_comment(const std::string& body, int line) {
    const std::set<std::string> rules = parse_allow(body);
    if (!rules.empty()) out_.suppressions.add(line, rules);
  }

  // `prefix_len` is how many identifier chars preceded the opening quote
  // (encoding prefixes like u8, L, and the R of raw strings).
  void lex_string(std::size_t prefix_len) {
    const int start_line = line_;
    const bool raw = prefix_len > 0 && text_[pos_ - 1] == 'R';
    ++pos_;  // consume the opening quote
    std::string body;
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < text_.size() && text_[pos_] != '(') {
        delim.push_back(text_[pos_]);
        ++pos_;
      }
      ++pos_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (pos_ < text_.size()) {
        if (text_.compare(pos_, closer.size(), closer) == 0) {
          pos_ += closer.size();
          break;
        }
        if (text_[pos_] == '\n') ++line_;
        body.push_back(text_[pos_]);
        ++pos_;
      }
    } else {
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if (c == '\\') {
          body.push_back(c);
          if (pos_ + 1 < text_.size()) body.push_back(text_[pos_ + 1]);
          pos_ += 2;
          continue;
        }
        if (c == '"') {
          ++pos_;
          break;
        }
        if (c == '\n') {  // unterminated literal: bail at line end
          break;
        }
        body.push_back(c);
        ++pos_;
      }
    }
    emit(Tok::kString, body, start_line);
  }

  void lex_char() {
    const int start_line = line_;
    ++pos_;  // opening '
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        body.push_back(c);
        if (pos_ + 1 < text_.size()) body.push_back(text_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '\'' || c == '\n') {
        if (c == '\'') ++pos_;
        break;
      }
      body.push_back(c);
      ++pos_;
    }
    emit(Tok::kChar, body, start_line);
  }

  void lex_ident_or_prefixed_literal() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && ident_char(text_[pos_])) ++pos_;
    const std::string word = text_.substr(start, pos_ - start);
    // Encoding / raw-string prefixes glued to a quote: u8"", L"", R"()",
    // u8R"()" etc. The prefix is part of the literal, not an identifier.
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'')) {
      static const std::set<std::string> kPrefixes = {"u8", "u",  "U",  "L",
                                                      "R",  "u8R", "uR", "UR",
                                                      "LR"};
      if (kPrefixes.count(word)) {
        if (text_[pos_] == '"') {
          lex_string(word.size());
        } else {
          lex_char();
        }
        return;
      }
    }
    emit(Tok::kIdent, word, line_);
  }

  void lex_number() {
    const std::size_t start = pos_;
    // pp-number: digits, idents, ', and exponent signs. Coarse but correct
    // for skipping purposes.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '\'' || c == '.') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(Tok::kNumber, text_.substr(start, pos_ - start), line_);
  }

  void lex_punct() {
    // Fuse the multi-char operators the passes care about; everything else
    // is emitted one char at a time.
    static const char* kFused[] = {"::", "->", "==", "!=", "<=", ">=",
                                   "&&", "||", "<<", ">>"};
    for (const char* op : kFused) {
      const std::size_t len = op[2] ? 3 : 2;
      (void)len;
      if (text_.compare(pos_, 2, op) == 0) {
        emit(Tok::kPunct, op, line_);
        pos_ += 2;
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, text_[pos_]), line_);
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex_source(const std::string& path, const std::string& text) {
  return Lexer(path, text).run();
}

LexedFile lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("rqsim-analyze: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex_source(path, buf.str());
}

}  // namespace rqsim::analyze
