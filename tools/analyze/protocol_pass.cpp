// Protocol-exhaustiveness pass.
//
// RQS201 — every verb in the canonical tables kServiceVerbs / kRouterVerbs
// (service/protocol.hpp) must be dispatched: the pass collects every
// `op == "<literal>"` comparison in the service dispatcher
// (service/protocol.cpp) and the fleet router (router/router.cpp) and
// reports table entries missing from either. Adding a verb to the protocol
// without teaching both dispatchers now fails tier-1 instead of surfacing
// as a runtime "bad_request" against one of them.
//
// RQS202 — inside the handler files, `json.at("key")` (which throws on a
// missing key) must be preceded by a `has("key")` presence check earlier
// in the same function. `get_*` lookups carry their own fallback and are
// always fine. The function boundary is recovered heuristically (a `{`
// following `)` at top level opens a function); a `has` anywhere earlier
// in the same function satisfies the check regardless of which object it
// was called on — a documented approximation.
#include <map>
#include <set>

#include "analyzer.hpp"

namespace rqsim::analyze {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

struct VerbTable {
  std::vector<std::string> verbs;
  int line = 0;  // of the table declaration
  bool found = false;
};

VerbTable extract_verb_table(const LexedFile& header, const std::string& name) {
  VerbTable table;
  const auto& toks = header.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != name) continue;
    table.line = toks[i].line;
    // Walk to the initializer brace and collect the string literals.
    std::size_t j = i + 1;
    while (j < toks.size() && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) ++j;
    if (j >= toks.size() || !is_punct(toks[j], "{")) return table;
    for (++j; j < toks.size() && !is_punct(toks[j], "}"); ++j) {
      if (toks[j].kind == Tok::kString) table.verbs.push_back(toks[j].text);
    }
    table.found = true;
    return table;
  }
  return table;
}

// Every string literal compared against an identifier named `op`.
std::set<std::string> collect_op_comparisons(const LexedFile& file) {
  std::set<std::string> verbs;
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i + 1], "==")) continue;
    if (is_ident(toks[i], "op") && toks[i + 2].kind == Tok::kString) {
      verbs.insert(toks[i + 2].text);
    } else if (toks[i].kind == Tok::kString && is_ident(toks[i + 2], "op")) {
      verbs.insert(toks[i].text);
    }
  }
  return verbs;
}

void check_table(const VerbTable& table, const std::string& table_name,
                 const LexedFile& header, const LexedFile& dispatch,
                 const std::string& dispatcher_label,
                 std::vector<Diagnostic>& out) {
  if (!table.found) {
    out.push_back(Diagnostic{
        header.path, 1, "RQS201",
        "verb table " + table_name + " not found in " + header.path,
        "declare the canonical verb list so the dispatch check can prove "
        "exhaustiveness"});
    return;
  }
  const std::set<std::string> dispatched = collect_op_comparisons(dispatch);
  for (const std::string& verb : table.verbs) {
    if (dispatched.count(verb)) continue;
    if (header.suppressions.allows(table.line, "RQS201")) continue;
    out.push_back(Diagnostic{
        dispatch.path, 1, "RQS201",
        "protocol verb \"" + verb + "\" (declared in " + table_name +
            ") is never dispatched by " + dispatcher_label,
        "add an `op == \"" + verb + "\"` branch (or drop the verb from the "
        "table if it was retired)"});
  }
}

void check_json_presence(const LexedFile& file, std::vector<Diagnostic>& out) {
  const auto& toks = file.tokens;
  std::set<std::string> checked;  // keys has()-checked in current function
  bool inside_function = false;
  int depth = 0;
  int function_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      if (!inside_function && i > 0 &&
          (is_punct(toks[i - 1], ")") || is_punct(toks[i - 1], "}"))) {
        inside_function = true;
        function_depth = depth;
      }
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      if (inside_function && depth < function_depth) {
        inside_function = false;
        checked.clear();
      }
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "has" && i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
        toks[i + 2].kind == Tok::kString) {
      checked.insert(toks[i + 2].text);
      continue;
    }
    if (t.text == "at" && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
        toks[i + 2].kind == Tok::kString) {
      const std::string& key = toks[i + 2].text;
      if (checked.count(key)) continue;
      if (file.suppressions.allows(t.line, "RQS202")) continue;
      out.push_back(Diagnostic{
          file.path, t.line, "RQS202",
          "Json::at(\"" + key + "\") without a prior has(\"" + key +
              "\") presence check in this function",
          "at() throws on a missing key — guard with has() and answer "
          "bad_request so the client sees the real problem"});
    }
  }
}

}  // namespace

void run_protocol_pass(const LexedFile& verbs_header,
                       const LexedFile& service_dispatch,
                       const LexedFile& router_dispatch,
                       const std::vector<LexedFile>& handler_files,
                       std::vector<Diagnostic>& out) {
  check_table(extract_verb_table(verbs_header, "kServiceVerbs"),
              "kServiceVerbs", verbs_header, service_dispatch,
              "the service ProtocolHandler", out);
  check_table(extract_verb_table(verbs_header, "kRouterVerbs"),
              "kRouterVerbs", verbs_header, router_dispatch, "the fleet router",
              out);
  for (const LexedFile& file : handler_files) {
    check_json_presence(file, out);
  }
}

}  // namespace rqsim::analyze
