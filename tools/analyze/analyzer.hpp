// rqsim-analyze: the in-tree static analyzer behind the `analyze` ctest.
//
// Three analysis families (rule catalog in DESIGN.md §12):
//
//   Source rules (token-level re-implementation of the grep rules in
//   scripts/check_source_rules.sh, minus its false-negative classes):
//     RQS001  raw state-buffer allocation outside sim/buffer_pool
//     RQS002  RNG construction outside common/rng (incl. using-aliases)
//     RQS003  std::thread outside the designated execution engines
//     RQS004  monotonic clock use outside telemetry/ and common/
//     RQS005  StateVector deep copy outside StateBufferPool/CowState
//     RQS006  raw socket syscall outside service/ and router/
//     RQS007  direct terminal output (printf family, std::cout/cerr/clog)
//             outside cli/, report/, and tools/ (bench/ is exempt too)
//
//   Concurrency pass (mutex acquisition sites + approximate intra-TU call
//   graph over src/service, src/router, src/sched, src/telemetry):
//     RQS101  lock-order inversion cycle (incl. self-deadlock re-lock)
//     RQS102  blocking call while holding a mutex
//     RQS103  condition_variable::wait guarded by a foreign mutex
//
//   Protocol exhaustiveness (service/protocol.* verb tables vs. the two
//   dispatchers, and Json field discipline in the handlers):
//     RQS201  declared protocol verb not dispatched
//     RQS202  Json::at(key) without a prior has(key) presence check
//
// Every diagnostic carries file:line, the rule id, and a fix hint, and can
// be silenced in place with `// rqsim-analyze: allow(<rule>) <reason>`
// (lexer.hpp documents the annotation grammar).
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace rqsim::analyze {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // e.g. "RQS001"
  std::string message;  // one line, what is wrong
  std::string hint;     // one line, how to fix it
};

/// "file:line: [RQS001] message" plus an indented hint line.
std::string render(const Diagnostic& diag);

/// One mutex the concurrency pass saw: declaration and acquisition counts,
/// for the --locks coverage report and the coverage test.
struct MutexInfo {
  std::string name;  // canonical (Class::member, file:member, or global)
  std::string declared_at;  // "file:line" of the std::mutex member, if seen
  int acquisitions = 0;
};

// ---------------------------------------------------------------- passes

/// Token-level source rules RQS001–RQS007 over one file. The rule→exempt-
/// path table lives in source_rules.cpp and mirrors check_source_rules.sh.
void run_source_rules(const LexedFile& file, std::vector<Diagnostic>& out);

/// Lock-order / blocking-under-lock / foreign-cv pass over a set of files.
/// Each file is treated as its own translation unit for the call graph;
/// mutex identities unify across TUs via Class::member canonical names.
/// `inventory`, when non-null, receives every mutex seen (declared or
/// acquired) for coverage reporting.
void run_concurrency_pass(const std::vector<LexedFile>& files,
                          std::vector<Diagnostic>& out,
                          std::vector<MutexInfo>* inventory);

/// Protocol-exhaustiveness pass. `verbs_header` declares the
/// kServiceVerbs / kRouterVerbs tables (service/protocol.hpp);
/// `service_dispatch` and `router_dispatch` are the two files whose
/// `op == "..."` comparisons must cover them. `handler_files` get the
/// RQS202 Json-presence check.
void run_protocol_pass(const LexedFile& verbs_header,
                       const LexedFile& service_dispatch,
                       const LexedFile& router_dispatch,
                       const std::vector<LexedFile>& handler_files,
                       std::vector<Diagnostic>& out);

// ----------------------------------------------------------- whole-tree run

struct AnalyzerConfig {
  std::string root = ".";  // repo root (contains src/)
  bool want_inventory = false;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<MutexInfo> inventory;
  int files_scanned = 0;
};

/// Run all passes over the tree rooted at config.root (src/ + bench/ for
/// the source rules, the concurrency dirs, and the protocol files).
/// Throws std::runtime_error if the tree does not look like the rqsim
/// repo (missing src/service/protocol.hpp).
AnalysisResult run_analysis(const AnalyzerConfig& config);

}  // namespace rqsim::analyze
