// Fixture: router dispatcher covering its whole verb table → no RQS201.
#include <string>

const char* dispatch_router(const std::string& op) {
  if (op == "ping") {
    return "pong";
  }
  if ("submit" == op) {
    return "queued";
  }
  return "bad_request";
}
