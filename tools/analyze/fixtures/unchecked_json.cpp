// Fixture: RQS202 — at() throws on a missing key; the guarded function is
// fine, the unguarded one is flagged.
struct Json {
  bool has(const char* key) const;
  const Json& at(const char* key) const;
  int as_int() const;
};

int read_checked(const Json& request) {
  if (!request.has("job")) {
    return -1;
  }
  return request.at("job").as_int();
}

int read_unchecked(const Json& request) {
  return request.at("tenant").as_int();
}
