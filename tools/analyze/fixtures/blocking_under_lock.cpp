// Fixture: RQS102 — a blocking call made while holding a mutex, both
// directly and one call-graph hop away.
#include <mutex>

void write_all(int fd, const char* line);

class Store {
 public:
  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    write_all(0, "flush");
  }

  void save() {
    std::lock_guard<std::mutex> lock(mu_);
    persist();
  }

  void persist() { write_all(1, "save"); }

 private:
  std::mutex mu_;
};
