// Fixture: zero diagnostics — every banned spelling below sits in a
// comment or a string literal, where the token-level lexer must not see it
// (the grep fallback's weak spot: it only strips `//` comments).
/* A block comment mentioning std::mt19937, new Amp[4], malloc(64),
   std::thread, steady_clock and ::socket(2, 1, 0) is documentation. */
const char* kDoc =
    "std::thread and steady_clock in a string literal are data, not code";
const char* kRaw = R"doc(drand48() and ::connect(fd, addr, len) and
StateVector copy = other; all inert inside a raw string)doc";
