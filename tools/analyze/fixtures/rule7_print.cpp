// Fixture: RQS007 — direct terminal output outside cli/, report/, tools/.
// snprintf (formats into a caller buffer, prints nothing) and member
// functions that merely share a libc name must not be flagged.
#include <cstdio>
#include <iostream>

void log_progress(int pct) {
  std::printf("progress: %d%%\n", pct);
  printf("again: %d\n", pct);
  std::cout << "done\n";
}

void log_error(const char* what) {
  std::fprintf(stderr, "error: %s\n", what);
  fputs(what, stderr);
  std::cerr << what << "\n";
}

using std::clog;

void aliased_stream() {
  clog << "aliased stream is still terminal output\n";
}

void format_into(char* buf, int n, int value) {
  std::snprintf(buf, static_cast<unsigned long>(n), "%d", value);  // allowed
}

struct Sink {
  void printf(const char*) {}
  void puts(const char*) {}
};

void member_spellings(Sink& sink) {
  sink.printf("a member, not libc");
  Sink* p = &sink;
  p->puts("same");
}
