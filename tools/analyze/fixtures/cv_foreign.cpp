// Fixture: RQS103 — condition_variable::wait releases only its own mutex;
// the other held lock stays locked for the whole wait.
#include <condition_variable>
#include <mutex>

class Queue {
 public:
  void drain() {
    std::unique_lock<std::mutex> state_lock(state_mu_);
    std::unique_lock<std::mutex> lk(wait_mu_);
    cv_.wait(lk);
  }

 private:
  std::condition_variable cv_;
  std::mutex state_mu_;
  std::mutex wait_mu_;
};
