// Fixture: RQS001 — raw state-buffer allocation outside StateBufferPool.
#include <complex>
#include <cstdlib>

void* grab_with_new(unsigned num_qubits) {
  auto* amps = new std::complex<double>[1ull << num_qubits];
  return amps;
}

void* grab_with_malloc(unsigned num_qubits) {
  return std::malloc((1ull << num_qubits) * sizeof(std::complex<double>));
}
