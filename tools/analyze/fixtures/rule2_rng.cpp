// Fixture: RQS002 — std RNG construction outside common/rng, in the
// qualified spelling the grep fallback also catches.
#include <random>

int roll_qualified() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

double roll_libc() {
  return drand48();
}
