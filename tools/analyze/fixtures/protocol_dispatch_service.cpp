// Fixture: service dispatcher that forgot the "reap" verb → RQS201.
#include <string>

const char* dispatch_service(const std::string& op) {
  if (op == "ping") {
    return "pong";
  }
  if (op == "submit") {
    return "queued";
  }
  return "bad_request";
}
