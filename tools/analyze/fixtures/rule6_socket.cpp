// Fixture: RQS006 — raw socket syscall outside service/ and router/.
int open_raw_socket() {
  const int fd = ::socket(2, 1, 0);
  if (fd >= 0 && ::listen(fd, 8) != 0) {
    return -1;
  }
  return fd;
}
