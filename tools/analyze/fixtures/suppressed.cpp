// Fixture: the inline suppression annotation silences a rule on the next
// line, with a reason; the same violation without the annotation is still
// reported.
#include <random>

int seeded_roll() {
  // rqsim-analyze: allow(RQS002) fixture exercises the suppression grammar
  std::mt19937 gen(1);
  return static_cast<int>(gen());
}

int unsuppressed_roll() {
  std::mt19937 gen(2);
  return static_cast<int>(gen());
}
