// Fixture: RQS101 — an a_→b_ / b_→a_ lock-order inversion cycle, plus a
// direct re-lock of a mutex the function already holds.
#include <mutex>

class Pair {
 public:
  void forward() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
  }
  void backward() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);
  }

 private:
  std::mutex a_;
  std::mutex b_;
};

class Recursive {
 public:
  void lock_twice() {
    std::lock_guard<std::mutex> first(m_);
    std::lock_guard<std::mutex> second(m_);
  }

 private:
  std::mutex m_;
};
