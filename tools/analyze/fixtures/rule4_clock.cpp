// Fixture: RQS004 — monotonic clock read outside telemetry/ and common/.
#include <chrono>

long long stamp_nanos() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}
