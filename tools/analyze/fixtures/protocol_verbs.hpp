// Fixture header: canonical verb tables for the protocol-exhaustiveness
// pass. "reap" is deliberately missing from the service dispatcher fixture.
inline constexpr const char* kServiceVerbs[] = {"ping", "submit", "reap"};
inline constexpr const char* kRouterVerbs[] = {"ping", "submit"};
