// Fixture: RQS002 through a using-directive — no `std::` spelling anywhere,
// so the grep fallback cannot see this one; only the token-level pass with
// alias resolution catches it.
#include <random>

using namespace std;

int roll_unqualified() {
  mt19937 gen(7);
  return static_cast<int>(gen());
}
