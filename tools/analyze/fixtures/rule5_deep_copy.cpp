// Fixture: RQS005 — full statevector copy-init outside the buffer pool.
struct StateVector {
  unsigned num_qubits = 0;
};

struct Trial {
  StateVector state;
};

StateVector checkpoint(const Trial& trial) {
  StateVector snapshot = trial.state;
  return snapshot;
}
