// Fixture: RQS003 — ad-hoc std::thread outside the execution engines.
#include <thread>

void spawn_detached_worker() {
  std::thread worker([] {});
  worker.detach();
}
