#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

namespace rqsim::analyze {

namespace fs = std::filesystem;

std::string render(const Diagnostic& diag) {
  std::string out = diag.file + ":" + std::to_string(diag.line) + ": [" +
                    diag.rule + "] " + diag.message;
  if (!diag.hint.empty()) out += "\n    hint: " + diag.hint;
  return out;
}

namespace {

bool is_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::vector<std::string> collect_sources(const fs::path& dir) {
  std::vector<std::string> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && is_source(entry.path())) {
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

AnalysisResult run_analysis(const AnalyzerConfig& config) {
  const fs::path root(config.root);
  if (!fs::exists(root / "src" / "service" / "protocol.hpp")) {
    throw std::runtime_error(
        "rqsim-analyze: " + config.root +
        " does not look like the rqsim repo (missing src/service/protocol.hpp)");
  }

  AnalysisResult result;

  // Source rules over src/ and the bench drivers.
  std::vector<std::string> rule_files = collect_sources(root / "src");
  for (const std::string& f : collect_sources(root / "bench")) {
    rule_files.push_back(f);
  }
  for (const std::string& path : rule_files) {
    LexedFile lexed = lex_file(path);
    run_source_rules(lexed, result.diagnostics);
    ++result.files_scanned;
  }

  // Concurrency pass over the mutex-holding subsystems.
  std::vector<LexedFile> concurrency_files;
  for (const char* dir : {"service", "router", "sched", "telemetry"}) {
    for (const std::string& path : collect_sources(root / "src" / dir)) {
      concurrency_files.push_back(lex_file(path));
    }
  }
  run_concurrency_pass(concurrency_files, result.diagnostics,
                       config.want_inventory ? &result.inventory : nullptr);

  // Protocol exhaustiveness.
  const LexedFile protocol_hpp =
      lex_file((root / "src" / "service" / "protocol.hpp").generic_string());
  const LexedFile protocol_cpp =
      lex_file((root / "src" / "service" / "protocol.cpp").generic_string());
  const LexedFile router_cpp =
      lex_file((root / "src" / "router" / "router.cpp").generic_string());
  const LexedFile server_cpp =
      lex_file((root / "src" / "service" / "server.cpp").generic_string());
  run_protocol_pass(protocol_hpp, protocol_cpp, router_cpp,
                    {protocol_cpp, router_cpp, server_cpp},
                    result.diagnostics);

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

}  // namespace rqsim::analyze
