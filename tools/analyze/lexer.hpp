// Token-level C++ lexer for rqsim-analyze.
//
// The grep-based source rules (scripts/check_source_rules.sh) strip `//`
// comments with sed and match the rest with regexes, which leaves three
// known false-negative/false-positive classes: block comments, string
// literals (a banned identifier mentioned inside either is not a call
// site), and qualified aliases (`using std::mt19937;` hides the `std::`
// the regex anchors on). This lexer eliminates all three by producing a
// real token stream: comments and literals become their own token kinds
// (or are dropped), so the rule passes only ever match code.
//
// Scope: a scanner, not a parser. It understands
//   - `//` line comments and `/* */` block comments,
//   - string literals with escapes, raw strings R"delim(...)delim",
//     char literals, and encoding prefixes (u8, L, ...),
//   - preprocessor lines (collapsed to one kPreproc token, including
//     backslash continuations, so `#include <thread>` never looks like a
//     use of `thread`),
//   - identifiers, numbers, and punctuation (multi-char operators that
//     matter to the passes — `::`, `->`, `==`, `!=` — are fused).
// Anything structural (declarations, scopes, call sites) is recovered by
// the individual passes on top of this stream.
//
// Suppressions: a comment of the form
//     // rqsim-analyze: allow(RQS001) reason...
//     // rqsim-analyze: allow(RQS101,RQS102) reason...
// is collected into a SuppressionIndex. The allowance applies to the line
// the comment starts on and to the following line, so both trailing
// comments and comment-above-the-statement styles work. A rule list of
// `*` allows every rule. The reason text is mandatory by convention
// (reviewed, not enforced).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rqsim::analyze {

enum class Tok {
  kIdent,
  kNumber,
  kString,   // text is the literal's *contents* (prefix/quotes stripped)
  kChar,
  kPunct,
  kPreproc,  // one token per preprocessor logical line, text = full line
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;
};

class SuppressionIndex {
 public:
  void add(int line, const std::set<std::string>& rules) {
    allow_[line].insert(rules.begin(), rules.end());
  }

  /// True if `rule` is suppressed at `line` (annotation on the same line or
  /// the line directly above).
  bool allows(int line, const std::string& rule) const {
    for (int probe : {line, line - 1}) {
      auto it = allow_.find(probe);
      if (it == allow_.end()) continue;
      if (it->second.count("*") || it->second.count(rule)) return true;
    }
    return false;
  }

  bool empty() const { return allow_.empty(); }

 private:
  std::map<int, std::set<std::string>> allow_;
};

struct LexedFile {
  std::string path;  // as handed to the lexer; passes match rules on this
  std::vector<Token> tokens;
  SuppressionIndex suppressions;
};

/// Lex an in-memory buffer (used by the fixture tests).
LexedFile lex_source(const std::string& path, const std::string& text);

/// Read `path` from disk and lex it. Throws std::runtime_error on IO error.
LexedFile lex_file(const std::string& path);

}  // namespace rqsim::analyze
