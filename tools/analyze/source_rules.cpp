// Source rules RQS001–RQS006: the six project rules of
// scripts/check_source_rules.sh re-implemented on the token stream.
//
// What the token level buys over the grep implementation:
//   - banned names inside block comments and string literals never match
//     (the shell script only strips `//` comments);
//   - `using std::mt19937;` / `using Engine = std::mt19937;` and
//     `using namespace std;` are resolved, so an unqualified alias of a
//     banned name is still caught (the regexes anchor on `std::`);
//   - preprocessor lines are opaque, so `#include <thread>` is not a use
//     of `thread`.
//
// The rule→exemption table mirrors the shell script byte for byte; the
// shell script stays in the tree as the portable fallback and is
// regression-tested against the same fixtures (--self-test).
#include <array>
#include <functional>
#include <set>

#include "analyzer.hpp"

namespace rqsim::analyze {

namespace {

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool is_exempt(const std::string& path, const std::vector<std::string>& needles) {
  for (const std::string& needle : needles) {
    if (path_contains(path, needle)) return true;
  }
  return false;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

struct Ctx {
  const LexedFile& file;
  std::vector<Diagnostic>& out;

  void report(const std::string& rule, int line, const std::string& message,
              const std::string& hint) {
    if (file.suppressions.allows(line, rule)) return;
    out.push_back(Diagnostic{file.path, line, rule, message, hint});
  }
};

// Track `using namespace std;`, `using std::X;`, `using Y = std::X;` and
// `typedef std::X Y;` so unqualified aliases of banned std names resolve.
// `banned` maps the std-name (e.g. "mt19937") to itself; `aliases` collects
// every local name that means one of them.
struct AliasScanner {
  std::set<std::string> banned;
  bool using_namespace_std = false;
  std::set<std::string> aliases;  // local spellings of a banned name

  void scan(const std::vector<Token>& toks) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_ident(toks[i], "using")) {
        scan_using(toks, i);
      } else if (is_ident(toks[i], "typedef")) {
        scan_typedef(toks, i);
      }
    }
  }

  bool names_banned(const std::string& name) const {
    if (aliases.count(name)) return true;
    return using_namespace_std && banned.count(name);
  }

 private:
  void scan_using(const std::vector<Token>& toks, std::size_t i) {
    // using namespace std ;
    if (i + 2 < toks.size() && is_ident(toks[i + 1], "namespace") &&
        is_ident(toks[i + 2], "std")) {
      using_namespace_std = true;
      return;
    }
    // using std :: NAME ;
    if (i + 3 < toks.size() && is_ident(toks[i + 1], "std") &&
        is_punct(toks[i + 2], "::") && toks[i + 3].kind == Tok::kIdent &&
        banned.count(toks[i + 3].text)) {
      aliases.insert(toks[i + 3].text);
      return;
    }
    // using ALIAS = std :: NAME ;  (possibly with template args we ignore)
    if (i + 5 < toks.size() && toks[i + 1].kind == Tok::kIdent &&
        is_punct(toks[i + 2], "=") && is_ident(toks[i + 3], "std") &&
        is_punct(toks[i + 4], "::") && toks[i + 5].kind == Tok::kIdent &&
        banned.count(toks[i + 5].text)) {
      aliases.insert(toks[i + 1].text);
    }
  }

  void scan_typedef(const std::vector<Token>& toks, std::size_t i) {
    // typedef std :: NAME ALIAS ;
    if (i + 4 < toks.size() && is_ident(toks[i + 1], "std") &&
        is_punct(toks[i + 2], "::") && toks[i + 3].kind == Tok::kIdent &&
        banned.count(toks[i + 3].text) && toks[i + 4].kind == Tok::kIdent) {
      aliases.insert(toks[i + 4].text);
    }
  }
};

// ------------------------------------------------------------------ RQS001

void rule_raw_alloc(Ctx& ctx) {
  // bench/ is exempt from rules 1–3 (parity with check_source_rules.sh,
  // which only extends rules 4–6 to the bench drivers).
  static const std::vector<std::string> kExempt = {"sim/buffer_pool.", "bench/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks[i], "new")) {
      // Collect the new-type-id window and look for amplitude types.
      for (std::size_t j = i + 1; j < toks.size() && j < i + 10; ++j) {
        const Token& t = toks[j];
        if (t.kind == Tok::kPunct &&
            (t.text == ";" || t.text == ")" || t.text == "{")) {
          break;
        }
        if (t.kind == Tok::kIdent &&
            (t.text == "amp_t" || t.text == "complex" ||
             t.text.rfind("Amp", 0) == 0)) {
          ctx.report("RQS001", toks[i].line,
                     "raw state-buffer allocation (`new " + t.text +
                         "...`) outside StateBufferPool",
                     "acquire the buffer from sim/buffer_pool.hpp "
                     "(StateBufferPool::acquire / acquire_copy / CowState)");
          break;
        }
      }
      continue;
    }
    if (toks[i].kind == Tok::kIdent &&
        (toks[i].text == "malloc" || toks[i].text == "calloc" ||
         toks[i].text == "realloc") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      // Skip member spellings (x.malloc(...)) — not the libc allocator.
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        continue;
      }
      ctx.report("RQS001", toks[i].line,
                 "raw `" + toks[i].text + "` call outside StateBufferPool",
                 "state buffers must come from sim/buffer_pool.hpp so "
                 "checkpoints recycle memory");
    }
  }
}

// ------------------------------------------------------------------ RQS002

void rule_rng(Ctx& ctx) {
  static const std::vector<std::string> kExempt = {"common/rng.", "bench/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  static const std::set<std::string> kStdRng = {
      "mt19937",     "mt19937_64", "minstd_rand", "minstd_rand0",
      "random_device", "rand",     "srand",       "ranlux24",
      "ranlux48",    "knuth_b",   "default_random_engine"};
  static const std::set<std::string> kBareRng = {"drand48", "erand48",
                                                 "lrand48", "mrand48",
                                                 "srand48", "rand_r"};
  AliasScanner aliases;
  aliases.banned = kStdRng;
  aliases.scan(ctx.file.tokens);

  const auto& toks = ctx.file.tokens;
  const auto report = [&](std::size_t i, const std::string& what) {
    ctx.report("RQS002", toks[i].line,
               "RNG construction (`" + what + "`) outside common/rng",
               "route randomness through rqsim::Rng so trial streams stay "
               "seeded and reproducible");
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const bool qualified_std =
        i >= 2 && is_ident(toks[i - 2], "std") && is_punct(toks[i - 1], "::");
    if (kStdRng.count(t.text)) {
      if (qualified_std) {
        report(i, "std::" + t.text);
      } else if (i == 0 || !is_punct(toks[i - 1], "::")) {
        // Unqualified: only when an alias / using-directive makes it mean
        // the std name (never for e.g. a member named `rand`).
        if (aliases.names_banned(t.text) &&
            !(i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))) {
          report(i, t.text);
        }
      }
      continue;
    }
    if (aliases.aliases.count(t.text) && !qualified_std &&
        (i == 0 || !is_punct(toks[i - 1], "::")) &&
        !(i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))) {
      // A local alias (`using Engine = std::mt19937;`) being used.
      if (i + 1 < toks.size() && !is_punct(toks[i + 1], "=")) {
        report(i, t.text);
      }
      continue;
    }
    if (kBareRng.count(t.text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") &&
        !(i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))) {
      report(i, t.text);
    }
  }
}

// ------------------------------------------------------------------ RQS003

void rule_thread(Ctx& ctx) {
  static const std::vector<std::string> kExempt = {
      "sched/tree_exec.cpp", "sched/parallel.cpp", "service/", "router/",
      "sim/kernel_engine.cpp", "bench/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  static const std::set<std::string> kThreadTypes = {"thread", "jthread"};
  AliasScanner aliases;
  aliases.banned = kThreadTypes;
  aliases.scan(ctx.file.tokens);
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || !(kThreadTypes.count(t.text) || aliases.aliases.count(t.text))) {
      continue;
    }
    const bool qualified_std =
        i >= 2 && is_ident(toks[i - 2], "std") && is_punct(toks[i - 1], "::");
    const bool aliased = aliases.names_banned(t.text) || aliases.aliases.count(t.text);
    if (!qualified_std && !aliased) continue;
    if (!qualified_std && i > 0 &&
        (is_punct(toks[i - 1], "::") || is_punct(toks[i - 1], ".") ||
         is_punct(toks[i - 1], "->"))) {
      continue;  // this_thread::..., member named thread
    }
    // `std::thread::id` and `std::this_thread` are observers, not spawns.
    if (i + 2 < toks.size() && is_punct(toks[i + 1], "::") &&
        (is_ident(toks[i + 2], "id") || is_ident(toks[i + 2], "hardware_concurrency"))) {
      continue;
    }
    if (i >= 2 && is_ident(toks[i - 2], "this_thread")) continue;
    ctx.report("RQS003", t.line,
               "std::thread use outside the designated execution engines",
               "spawn through the tree executor, chunked fallback, service "
               "worker pool, or kernel pool — ad-hoc threads bypass MSV "
               "reservations and per-trial-seed determinism");
  }
}

// ------------------------------------------------------------------ RQS004

void rule_clock(Ctx& ctx) {
  static const std::vector<std::string> kExempt = {"telemetry/", "common/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  for (const Token& t : ctx.file.tokens) {
    if (t.kind == Tok::kIdent &&
        (t.text == "steady_clock" || t.text == "high_resolution_clock")) {
      ctx.report("RQS004", t.line,
                 "monotonic clock use (`" + t.text + "`) outside telemetry",
                 "take timings from telemetry/clock.hpp (Stopwatch, "
                 "clock_now) or a trace span so they reach the telemetry "
                 "output");
    }
  }
}

// ------------------------------------------------------------------ RQS005

void rule_deep_copy(Ctx& ctx) {
  static const std::vector<std::string> kExempt = {
      "sim/buffer_pool.", "obs/pauli_string.cpp", "dm/density_matrix.cpp"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  const auto& toks = ctx.file.tokens;
  // StateVector NAME = <lvalue-ish expr> ;   — copy-init from an existing
  // vector. A constructor call (`StateVector sv(n)`) or a call expression
  // on the right (`= pool.acquire(...)`) is fine.
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "StateVector")) continue;
    if (i > 0 && is_punct(toks[i - 1], "::")) continue;  // qualified member
    std::size_t j = i + 1;
    if (toks[j].kind == Tok::kPunct && toks[j].text == "&") continue;  // ref
    if (toks[j].kind != Tok::kIdent) continue;
    ++j;
    if (j >= toks.size() || !is_punct(toks[j], "=")) continue;
    ++j;
    // Walk the initializer; flag iff it is a bare lvalue chain.
    bool lvalue_chain = true;
    bool any_tokens = false;
    int brackets = 0;
    for (; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind == Tok::kPunct && t.text == ";" && brackets == 0) break;
      any_tokens = true;
      if (t.kind == Tok::kPunct) {
        if (t.text == "[") { ++brackets; continue; }
        if (t.text == "]") { --brackets; continue; }
        if (t.text == "." || t.text == "->" || t.text == "::" ||
            t.text == "*") {
          continue;
        }
        lvalue_chain = false;
        continue;
      }
      if (t.kind == Tok::kIdent || t.kind == Tok::kNumber) continue;
      lvalue_chain = false;
    }
    if (any_tokens && lvalue_chain) {
      ctx.report("RQS005", toks[i].line,
                 "StateVector deep copy outside StateBufferPool/CowState",
                 "a checkpoint copy is a 2^n memcpy — use "
                 "StateBufferPool::acquire_copy or CowState (fork defers "
                 "the copy to first write)");
    }
  }
}

// ------------------------------------------------------------------ RQS006

void rule_socket(Ctx& ctx) {
  static const std::vector<std::string> kExempt = {"service/", "router/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  static const std::set<std::string> kSyscalls = {"socket", "connect",
                                                  "accept", "bind", "listen"};
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i], "::")) continue;
    // Global-namespace qualifier: `::` not preceded by an identifier or a
    // closing template angle.
    if (i > 0 && (toks[i - 1].kind == Tok::kIdent || is_punct(toks[i - 1], ">"))) {
      continue;
    }
    if (toks[i + 1].kind == Tok::kIdent && kSyscalls.count(toks[i + 1].text) &&
        is_punct(toks[i + 2], "(")) {
      ctx.report("RQS006", toks[i].line,
                 "raw socket syscall (`::" + toks[i + 1].text +
                     "`) outside service/ and router/",
                 "go through service/socket_util.hpp so the connection gets "
                 "bounded-line framing, timeouts, and retry policy");
    }
  }
}

// ------------------------------------------------------------------ RQS007

void rule_print(Ctx& ctx) {
  // Direct terminal output belongs to the CLI, report, and bench layers
  // (tools/ sits outside the scanned tree entirely); everything else must
  // surface information through telemetry counters, trace spans, or
  // returned results so the service and router stay silent on stdio.
  // snprintf/vsnprintf format into a caller buffer without printing and
  // stay allowed everywhere.
  static const std::vector<std::string> kExempt = {"cli/", "report/", "bench/"};
  if (is_exempt(ctx.file.path, kExempt)) return;
  static const std::set<std::string> kPrintCalls = {
      "printf", "fprintf", "puts", "fputs", "vprintf", "vfprintf"};
  static const std::set<std::string> kStreams = {"cout", "cerr", "clog"};
  AliasScanner aliases;
  aliases.banned = kStreams;
  aliases.scan(ctx.file.tokens);
  const auto& toks = ctx.file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const bool member =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    const bool qualified_std =
        i >= 2 && is_ident(toks[i - 2], "std") && is_punct(toks[i - 1], "::");
    // `Sink::printf` / `sink.printf(...)` is someone's member, not libc;
    // `::printf` and the unqualified spelling are.
    const bool foreign_qualified = !qualified_std && i >= 2 &&
                                   is_punct(toks[i - 1], "::") &&
                                   toks[i - 2].kind == Tok::kIdent;
    // `void printf(const char*)` — a preceding type name means this is a
    // declaration of someone's own function, not a call (`return printf(`
    // is still a call).
    const bool declaration = !qualified_std && i > 0 &&
                             toks[i - 1].kind == Tok::kIdent &&
                             toks[i - 1].text != "return";
    if (kPrintCalls.count(t.text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && !member && !foreign_qualified &&
        !declaration) {
      ctx.report("RQS007", t.line,
                 "direct terminal output (`" + t.text +
                     "`) outside cli/, report/, and tools/",
                 "record the value in telemetry (Counter/Histogram), a trace "
                 "span, or return it to the caller — services must stay "
                 "silent on stdio");
      continue;
    }
    if (kStreams.count(t.text) &&
        (qualified_std ||
         (aliases.names_banned(t.text) && !member &&
          (i == 0 || !is_punct(toks[i - 1], "::"))))) {
      ctx.report("RQS007", t.line,
                 "direct terminal output (`std::" + t.text +
                     "`) outside cli/, report/, and tools/",
                 "record the value in telemetry (Counter/Histogram), a trace "
                 "span, or return it to the caller — services must stay "
                 "silent on stdio");
    }
  }
}

}  // namespace

void run_source_rules(const LexedFile& file, std::vector<Diagnostic>& out) {
  Ctx ctx{file, out};
  rule_raw_alloc(ctx);
  rule_rng(ctx);
  rule_thread(ctx);
  rule_clock(ctx);
  rule_deep_copy(ctx);
  rule_socket(ctx);
  rule_print(ctx);
}

}  // namespace rqsim::analyze
