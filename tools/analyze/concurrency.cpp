// Concurrency pass: RQS101 (lock-order inversion cycles), RQS102 (blocking
// call while holding a mutex), RQS103 (condition_variable::wait guarded by
// a foreign mutex while other locks are held).
//
// Pipeline per translation unit (= one file; headers contribute mutex
// declarations only):
//   1. scope walk — track namespace/class nesting so in-class definitions
//      get a class prefix, and recognize function definitions by the
//      `name(...) ... {` shape;
//   2. body walk — track RAII guard lifetimes (lock_guard / unique_lock /
//      scoped_lock over named members; try_to_lock / defer_lock guards are
//      mapped but not counted as held), record every acquisition made
//      while other locks are held, every call site with its held set, and
//      every blocking call;
//   3. propagation — an approximate intra-TU call graph (callees matched
//      by name) closes acquisitions and blocking behavior transitively, so
//      `f` holding A and calling `g` that locks B yields the edge A→B;
//   4. the union of all TUs' edges forms one lock-order graph over
//      canonical mutex names (Class::member where resolvable, else
//      file:member); strongly connected components of size > 1 and
//      self-edges are reported as RQS101.
//
// Known approximations (documented in DESIGN.md §12): mutexes are
// identified per class/file, not per instance; lambdas count into their
// enclosing function; calls resolve intra-TU by last name component;
// manual mutex.lock()/unlock() outside an RAII guard is not modeled.
#include <algorithm>
#include <map>
#include <set>

#include "analyzer.hpp"

namespace rqsim::analyze {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "if",      "for",      "while",   "switch",       "catch",
      "return",  "sizeof",   "alignof", "new",          "delete",
      "throw",   "do",       "else",    "case",         "default",
      "co_await", "co_return", "alignas", "decltype",   "noexcept",
      "static_assert", "typeid", "requires", "__attribute__"};
  return kKeywords;
}

// Calls that can block the calling thread. Holding any mutex across one of
// these serializes unrelated work behind the lock (and, for join/wait/
// acquire, risks deadlock against the thread being waited on). Tuned to
// this codebase: the socket layer (service/socket_util.hpp), the service
// client, SimService's terminal-state waits, buffer-pool acquisition, and
// thread joins.
const std::set<std::string>& blocking_names() {
  static const std::set<std::string> kBlocking = {
      // socket_util / transport
      "read_line_bounded", "write_all", "send_line", "connect_with_timeout",
      "connect_unix", "connect_tcp", "accept_connection",
      // libc-level socket ops (when called as methods/functions)
      "recv", "send", "poll", "select",
      // service blocking entry points
      "wait_terminal", "request", "submit_request",
      // state-buffer pool (takes the pool's global mutex, may allocate
      // hundreds of MiB)
      "acquire", "acquire_copy",
      // thread lifetime
      "join", "sleep_for", "sleep_until"};
  return kBlocking;
}

std::string file_stem(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

struct Acquisition {
  std::string mutex;
  int line = 0;
};

struct CallSite {
  std::string callee;
  int line = 0;
  std::vector<std::string> held;
};

struct BlockingCall {
  std::string what;
  int line = 0;
  std::vector<std::string> held;
};

struct OrderEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;  // callee name when the edge came from propagation
};

struct FunctionInfo {
  std::string name;          // last component
  std::string qualified;     // Class::name when known
  std::string file;
  std::vector<Acquisition> acquires;
  std::vector<CallSite> calls;
  std::vector<BlockingCall> blocking;
};

struct TuResult {
  std::vector<FunctionInfo> functions;
  std::vector<OrderEdge> edges;        // direct nesting edges
  std::vector<Diagnostic> diags;       // RQS103 + direct re-lock RQS101
  std::map<std::string, std::pair<std::string, int>> declared;  // canonical -> (file,line)
};

// ------------------------------------------------------------ TU scanner

class TuScanner {
 public:
  TuScanner(const LexedFile& file) : file_(file), stem_(file_stem(file.path)) {}

  TuResult run() {
    const auto& toks = file_.tokens;
    std::vector<std::string> class_stack;  // parallel to brace_kinds_
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "{")) {
        brace_kinds_.push_back(classify_brace(toks, i, class_stack));
        continue;
      }
      if (is_punct(t, "}")) {
        if (!brace_kinds_.empty()) {
          if (brace_kinds_.back() == BraceKind::kClass && !class_stack.empty()) {
            class_stack.pop_back();
          }
          brace_kinds_.pop_back();
        }
        continue;
      }
      // Mutex member / global declaration: std :: mutex NAME ;
      if (is_ident(t, "std") && i + 3 < toks.size() && is_punct(toks[i + 1], "::") &&
          is_ident(toks[i + 2], "mutex") && toks[i + 3].kind == Tok::kIdent &&
          i + 4 < toks.size() && is_punct(toks[i + 4], ";")) {
        const std::string owner =
            class_stack.empty() ? stem_ : class_stack.back();
        out_.declared[owner + "::" + toks[i + 3].text] = {file_.path,
                                                          toks[i + 3].line};
        i += 4;
        continue;
      }
      // Function definition?
      if (t.kind == Tok::kIdent && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(") && !keyword_set().count(t.text)) {
        std::size_t body = find_body(toks, i + 1);
        if (body != 0) {
          FunctionInfo fn;
          fn.name = t.text;
          fn.file = file_.path;
          std::string prefix = name_prefix(toks, i);
          if (prefix.empty() && !class_stack.empty()) prefix = class_stack.back();
          fn.qualified = prefix.empty() ? fn.name : prefix + "::" + fn.name;
          class_prefix_ = prefix;
          i = parse_body(toks, body, fn);
          out_.functions.push_back(std::move(fn));
          continue;
        }
      }
    }
    return std::move(out_);
  }

 private:
  enum class BraceKind { kClass, kOther };

  BraceKind classify_brace(const std::vector<Token>& toks, std::size_t i,
                           std::vector<std::string>& class_stack) {
    // Walk back over base-class clauses to find `class|struct NAME ... {`.
    std::size_t j = i;
    int steps = 0;
    while (j > 0 && steps < 16) {
      --j;
      ++steps;
      const Token& t = toks[j];
      if (is_punct(t, ";") || is_punct(t, "}") || is_punct(t, "{")) break;
      if ((is_ident(t, "class") || is_ident(t, "struct")) && j + 1 < toks.size()) {
        // Skip alignas(...) / attribute junk between the keyword and name.
        std::size_t k = j + 1;
        if (is_ident(toks[k], "alignas") && k + 1 < toks.size() &&
            is_punct(toks[k + 1], "(")) {
          int pdepth = 0;
          for (k = k + 1; k < toks.size(); ++k) {
            if (is_punct(toks[k], "(")) ++pdepth;
            else if (is_punct(toks[k], ")") && --pdepth == 0) { ++k; break; }
          }
        }
        if (k < toks.size() && toks[k].kind == Tok::kIdent) {
          class_stack.push_back(toks[k].text);
          return BraceKind::kClass;
        }
        break;
      }
    }
    return BraceKind::kOther;
  }

  // Qualified-name prefix of the identifier at `i` (A::B for `A::B::f`).
  std::string name_prefix(const std::vector<Token>& toks, std::size_t i) {
    std::vector<std::string> parts;
    std::size_t j = i;
    while (j >= 2 && is_punct(toks[j - 1], "::") && toks[j - 2].kind == Tok::kIdent) {
      parts.insert(parts.begin(), toks[j - 2].text);
      j -= 2;
    }
    std::string prefix;
    for (const std::string& p : parts) {
      if (!prefix.empty()) prefix += "::";
      prefix += p;
    }
    return prefix;
  }

  // From the '(' at `open`, decide whether this is a function definition;
  // return the index of the body '{' (0 if not a definition).
  std::size_t find_body(const std::vector<Token>& toks, std::size_t open) {
    std::size_t close = match_paren(toks, open);
    if (close == 0) return 0;
    std::size_t j = close + 1;
    // Skip cv-qualifiers, ref-qualifiers, noexcept(...), attributes,
    // trailing return types; stop at `{` (definition), `;`/`=`/`,` (not).
    int angle = 0;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (t.kind == Tok::kPunct) {
        if (t.text == "{" && angle == 0) return j;
        if ((t.text == ";" || t.text == "=" || t.text == ",") && angle == 0) return 0;
        if (t.text == ":" && angle == 0) return scan_ctor_init(toks, j + 1);
        if (t.text == "(") {
          std::size_t c = match_paren(toks, j);
          if (c == 0) return 0;
          j = c + 1;
          continue;
        }
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
      }
      ++j;
    }
    return 0;
  }

  // After a ctor `:`, skip `member(args)` / `member{args}` initializers;
  // the next top-level '{' not directly after a member name is the body.
  std::size_t scan_ctor_init(const std::vector<Token>& toks, std::size_t j) {
    while (j < toks.size()) {
      if (toks[j].kind != Tok::kIdent) return 0;
      ++j;
      if (j >= toks.size()) return 0;
      if (is_punct(toks[j], "(")) {
        std::size_t c = match_paren(toks, j);
        if (c == 0) return 0;
        j = c + 1;
      } else if (is_punct(toks[j], "{")) {
        std::size_t c = match_brace(toks, j);
        if (c == 0) return 0;
        j = c + 1;
      } else {
        return 0;
      }
      if (j < toks.size() && is_punct(toks[j], ",")) {
        ++j;
        continue;
      }
      if (j < toks.size() && is_punct(toks[j], "{")) return j;
      return 0;
    }
    return 0;
  }

  std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")")) {
        if (--depth == 0) return j;
      }
    }
    return 0;
  }

  std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (is_punct(toks[j], "{")) ++depth;
      else if (is_punct(toks[j], "}")) {
        if (--depth == 0) return j;
      }
    }
    return 0;
  }

  struct Guard {
    std::vector<std::string> mutexes;
    std::string var;
    int depth = 0;
    bool held = true;  // false for try_to_lock / defer_lock
  };

  // A lambda body does not necessarily run under the guards live at its
  // definition site (it may be handed to a thread or stored), so guards
  // below `guard_floor` are masked while scanning it. This trades the
  // inline-invoked-lambda case (kernel_parallel_for bodies) for zero false
  // positives on thread-spawn sites — the dominant pattern here.
  struct LambdaFrame {
    std::size_t guard_floor = 0;
    int depth = 0;  // brace depth of the lambda body
  };

  std::vector<std::string> held_set(const std::vector<Guard>& guards) {
    const std::size_t floor =
        lambda_frames_.empty() ? 0 : lambda_frames_.back().guard_floor;
    std::vector<std::string> held;
    for (std::size_t g = floor; g < guards.size(); ++g) {
      if (!guards[g].held) continue;
      for (const std::string& m : guards[g].mutexes) held.push_back(m);
    }
    return held;
  }

  // If the token at `i` opens a lambda introducer in expression position,
  // return the index of the lambda's body '{' (0 otherwise).
  std::size_t lambda_body_open(const std::vector<Token>& toks, std::size_t i) {
    if (!is_punct(toks[i], "[")) return 0;
    if (i == 0) return 0;
    const Token& prev = toks[i - 1];
    const bool expr_pos =
        (prev.kind == Tok::kPunct &&
         (prev.text == "(" || prev.text == "," || prev.text == "=" ||
          prev.text == "{" || prev.text == ";" || prev.text == "&&" ||
          prev.text == "||" || prev.text == "<<" || prev.text == ":")) ||
        is_ident(prev, "return");
    if (!expr_pos) return 0;
    // Matching ']' (capture lists do not nest brackets except defaults).
    int bdepth = 0;
    std::size_t j = i;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "[")) ++bdepth;
      else if (is_punct(toks[j], "]")) {
        if (--bdepth == 0) break;
      }
    }
    if (j >= toks.size()) return 0;
    ++j;
    if (j < toks.size() && is_punct(toks[j], "(")) {
      const std::size_t close = match_paren(toks, j);
      if (close == 0) return 0;
      j = close + 1;
    }
    // mutable / noexcept / -> ret
    int angle = 0;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (t.kind == Tok::kPunct) {
        if (t.text == "{" && angle == 0) return j;
        if ((t.text == ";" || t.text == ")" || t.text == ",") && angle == 0) return 0;
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
      }
      ++j;
    }
    return 0;
  }

  // Canonical mutex name from the argument token range [b, e).
  std::string canonical_mutex(const std::vector<Token>& toks, std::size_t b,
                              std::size_t e) {
    std::vector<std::string> chain;
    int bracket = 0;
    for (std::size_t j = b; j < e; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "[")) { ++bracket; continue; }
      if (is_punct(t, "]")) { --bracket; continue; }
      if (bracket > 0) continue;
      if (t.kind == Tok::kIdent && t.text != "this") chain.push_back(t.text);
    }
    if (chain.empty()) return "";
    const std::string& last = chain.back();
    if (chain.size() == 1 && !class_prefix_.empty()) {
      return class_prefix_ + "::" + last;  // bare member in a class method
    }
    if (chain.size() == 1) return stem_ + "::" + last;  // global / local
    return stem_ + "::" + last;  // obj.member — owner type unknown
  }

  std::size_t parse_body(const std::vector<Token>& toks, std::size_t body_open,
                         FunctionInfo& fn) {
    std::vector<Guard> guards;
    std::set<std::size_t> lambda_opens;
    lambda_frames_.clear();
    int depth = 0;
    std::size_t i = body_open;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "[")) {
        const std::size_t body = lambda_body_open(toks, i);
        if (body != 0) lambda_opens.insert(body);
        continue;
      }
      if (is_punct(t, "{")) {
        ++depth;
        if (lambda_opens.count(i)) {
          lambda_frames_.push_back(LambdaFrame{guards.size(), depth});
        }
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!guards.empty() && guards.back().depth > depth) guards.pop_back();
        while (!lambda_frames_.empty() && lambda_frames_.back().depth > depth) {
          lambda_frames_.pop_back();
        }
        if (depth == 0) break;
        continue;
      }
      if (t.kind != Tok::kIdent) continue;

      if (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock") {
        i = parse_guard(toks, i, depth, guards);
        continue;
      }

      const bool member_call =
          i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
      if ((t.text == "wait" || t.text == "wait_for" || t.text == "wait_until") &&
          member_call && i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
          toks[i + 2].kind == Tok::kIdent) {
        // cv.wait(lk): look the guard variable up; any *other* held mutex
        // stays locked for the whole wait.
        const std::string& lockvar = toks[i + 2].text;
        const Guard* own = nullptr;
        for (const Guard& g : guards) {
          if (g.var == lockvar) own = &g;
        }
        if (own != nullptr) {
          std::vector<std::string> others;
          for (const std::string& h : held_set(guards)) {
            if (std::find(own->mutexes.begin(), own->mutexes.end(), h) ==
                own->mutexes.end()) {
              others.push_back(h);
            }
          }
          if (!others.empty() &&
              !file_.suppressions.allows(t.line, "RQS103")) {
            out_.diags.push_back(Diagnostic{
                file_.path, t.line, "RQS103",
                "condition_variable::" + t.text + " while still holding " +
                    join(others),
                "the wait only releases its own mutex — every other held "
                "lock blocks all contenders until the wakeup"});
          }
          continue;  // handled; do not double-count as a blocking call
        }
      }

      if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
          !keyword_set().count(t.text)) {
        const std::vector<std::string> held = held_set(guards);
        if (blocking_names().count(t.text)) {
          fn.blocking.push_back(BlockingCall{t.text, t.line, held});
        } else if (!member_call &&
                   !(i > 0 && is_punct(toks[i - 1], "::"))) {
          fn.calls.push_back(CallSite{t.text, t.line, held});
        } else {
          // Qualified / member call: still useful as an intra-TU edge
          // (methods of the same class live in this TU).
          fn.calls.push_back(CallSite{t.text, t.line, held});
        }
      }
    }
    fn.acquires = acquires_buffer_;
    acquires_buffer_.clear();
    return i;
  }

  // Parse one guard declaration starting at the lock_guard/unique_lock/
  // scoped_lock identifier; returns the index to resume from.
  std::size_t parse_guard(const std::vector<Token>& toks, std::size_t i,
                          int depth, std::vector<Guard>& guards) {
    const int line = toks[i].line;
    std::size_t j = i + 1;
    // Template argument list.
    if (j < toks.size() && is_punct(toks[j], "<")) {
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++angle;
        else if (is_punct(toks[j], ">")) {
          if (--angle == 0) { ++j; break; }
        } else if (is_punct(toks[j], ">>")) {
          angle -= 2;
          if (angle <= 0) { ++j; break; }
        }
      }
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent) return i;
    Guard guard;
    guard.var = toks[j].text;
    guard.depth = depth;
    ++j;
    if (j >= toks.size() || !is_punct(toks[j], "(")) {
      // `unique_lock<mutex> lk;` — deferred, no mutex yet.
      return j - 1;
    }
    const std::size_t close = match_paren(toks, j);
    if (close == 0) return j;
    // Split the argument list at top-level commas.
    std::size_t arg_start = j + 1;
    int pdepth = 0;
    std::vector<std::pair<std::size_t, std::size_t>> args;
    for (std::size_t k = j + 1; k <= close; ++k) {
      if (is_punct(toks[k], "(")) ++pdepth;
      else if (is_punct(toks[k], ")")) {
        if (pdepth == 0 && k == close) {
          if (k > arg_start) args.emplace_back(arg_start, k);
          break;
        }
        --pdepth;
      } else if (is_punct(toks[k], ",") && pdepth == 0) {
        args.emplace_back(arg_start, k);
        arg_start = k + 1;
      }
    }
    bool acquiring = true;
    for (const auto& [b, e] : args) {
      bool is_tag = false;
      for (std::size_t k = b; k < e; ++k) {
        if (toks[k].kind == Tok::kIdent &&
            (toks[k].text == "try_to_lock" || toks[k].text == "defer_lock")) {
          acquiring = false;
          is_tag = true;
        }
        if (toks[k].kind == Tok::kIdent && toks[k].text == "adopt_lock") {
          is_tag = true;  // adopted: already held, but no new order edge
        }
      }
      if (is_tag) continue;
      const std::string m = canonical_mutex(toks, b, e);
      if (!m.empty()) guard.mutexes.push_back(m);
    }
    guard.held = acquiring;
    if (acquiring) {
      const std::vector<std::string> held = held_set(guards);
      for (const std::string& m : guard.mutexes) {
        if (std::find(held.begin(), held.end(), m) != held.end()) {
          if (!file_.suppressions.allows(line, "RQS101")) {
            out_.diags.push_back(Diagnostic{
                file_.path, line, "RQS101",
                "re-lock of " + m + " which is already held here",
                "std::mutex is non-recursive — this deadlocks at runtime"});
          }
          continue;
        }
        for (const std::string& h : held) {
          out_.edges.push_back(OrderEdge{h, m, file_.path, line, ""});
        }
        acquires_buffer_.push_back(Acquisition{m, line});
      }
      // scoped_lock over several mutexes uses std::lock's deadlock-free
      // ordering, so no edges among its own members.
    }
    guards.push_back(std::move(guard));
    return close;
  }

  std::string join(const std::vector<std::string>& items) {
    std::string out;
    for (const std::string& s : items) {
      if (!out.empty()) out += ", ";
      out += s;
    }
    return out;
  }

  const LexedFile& file_;
  std::string stem_;
  std::string class_prefix_;
  std::vector<BraceKind> brace_kinds_;
  std::vector<Acquisition> acquires_buffer_;
  std::vector<LambdaFrame> lambda_frames_;
  TuResult out_;
};

// ----------------------------------------------------- transitive closure

struct TuGraph {
  std::map<std::string, std::vector<const FunctionInfo*>> by_name;

  // Transitive mutex acquisitions of `name` (memoized).
  const std::set<std::string>& acquires(const std::string& name) {
    auto it = acq_memo_.find(name);
    if (it != acq_memo_.end()) return it->second;
    auto& slot = acq_memo_[name];  // insert first to cut recursion cycles
    auto fns = by_name.find(name);
    if (fns == by_name.end()) return slot;
    std::set<std::string> result;
    for (const FunctionInfo* fn : fns->second) {
      for (const Acquisition& a : fn->acquires) result.insert(a.mutex);
      for (const CallSite& c : fn->calls) {
        if (c.callee == name) continue;
        const std::set<std::string>& sub = acquires(c.callee);
        result.insert(sub.begin(), sub.end());
      }
    }
    acq_memo_[name] = result;
    return acq_memo_[name];
  }

  // First blocking call reachable from `name` ("" if none); memoized.
  const std::string& blocking_via(const std::string& name) {
    auto it = blk_memo_.find(name);
    if (it != blk_memo_.end()) return it->second;
    auto& slot = blk_memo_[name];
    auto fns = by_name.find(name);
    if (fns == by_name.end()) return slot;
    for (const FunctionInfo* fn : fns->second) {
      if (!fn->blocking.empty()) {
        slot = fn->blocking.front().what;
        return slot;
      }
    }
    for (const FunctionInfo* fn : fns->second) {
      for (const CallSite& c : fn->calls) {
        if (c.callee == name) continue;
        const std::string& sub = blocking_via(c.callee);
        if (!sub.empty()) {
          slot = c.callee + " -> " + sub;
          return slot;
        }
      }
    }
    return slot;
  }

 private:
  std::map<std::string, std::set<std::string>> acq_memo_;
  std::map<std::string, std::string> blk_memo_;
};

std::string join_names(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

// Tarjan SCC over the mutex order graph.
struct Scc {
  const std::map<std::string, std::set<std::string>>& adj;
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> components;
  int counter = 0;

  void run() {
    for (const auto& [node, _] : adj) {
      if (!index.count(node)) strongconnect(node);
    }
  }

  void strongconnect(const std::string& v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    auto it = adj.find(v);
    if (it != adj.end()) {
      for (const std::string& w : it->second) {
        if (!index.count(w)) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> comp;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      if (comp.size() > 1) components.push_back(std::move(comp));
    }
  }
};

}  // namespace

void run_concurrency_pass(const std::vector<LexedFile>& files,
                          std::vector<Diagnostic>& out,
                          std::vector<MutexInfo>* inventory) {
  std::vector<OrderEdge> edges;
  std::vector<Diagnostic> diags;
  std::map<std::string, std::pair<std::string, int>> declared;
  std::map<std::string, int> acquisition_counts;

  for (const LexedFile& file : files) {
    TuScanner scanner(file);
    TuResult tu = scanner.run();
    for (auto& d : tu.declared) declared.insert(d);
    edges.insert(edges.end(), tu.edges.begin(), tu.edges.end());
    diags.insert(diags.end(), tu.diags.begin(), tu.diags.end());

    TuGraph graph;
    for (const FunctionInfo& fn : tu.functions) {
      graph.by_name[fn.name].push_back(&fn);
    }
    for (const FunctionInfo& fn : tu.functions) {
      for (const Acquisition& a : fn.acquires) ++acquisition_counts[a.mutex];
      // Direct blocking calls under a lock.
      for (const BlockingCall& b : fn.blocking) {
        if (b.held.empty()) continue;
        if (file.suppressions.allows(b.line, "RQS102")) continue;
        diags.push_back(Diagnostic{
            fn.file, b.line, "RQS102",
            "blocking call `" + b.what + "` while holding " + join_names(b.held),
            "release the lock first (copy what you need out of the critical "
            "section), or move the blocking work outside it"});
      }
      // Propagated: calls made while holding locks.
      for (const CallSite& c : fn.calls) {
        if (c.held.empty()) continue;
        const std::set<std::string>& sub = graph.acquires(c.callee);
        for (const std::string& m : sub) {
          for (const std::string& h : c.held) {
            if (h == m) continue;  // instance-blind; direct re-locks are
                                   // reported by the TU scanner instead
            edges.push_back(OrderEdge{h, m, fn.file, c.line, c.callee});
          }
        }
        const std::string& via = graph.blocking_via(c.callee);
        if (!via.empty() && !file.suppressions.allows(c.line, "RQS102")) {
          diags.push_back(Diagnostic{
              fn.file, c.line, "RQS102",
              "call to `" + c.callee + "` (blocks via " + via +
                  ") while holding " + join_names(c.held),
              "release the lock before calling into blocking code"});
        }
      }
    }
  }

  // Build the order graph and hunt for cycles.
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::string, OrderEdge> witness;  // "from->to" -> first edge
  for (const OrderEdge& e : edges) {
    if (e.from.empty() || e.to.empty()) continue;
    adj[e.from].insert(e.to);
    adj[e.to];  // ensure node exists
    witness.emplace(e.from + "->" + e.to, e);
  }
  Scc scc{adj, {}, {}, {}, {}, {}, 0};
  scc.run();
  for (const std::vector<std::string>& comp : scc.components) {
    // Report at the witness of the first edge inside the component.
    std::string detail;
    const OrderEdge* site = nullptr;
    for (const std::string& a : comp) {
      for (const std::string& b : comp) {
        auto w = witness.find(a + "->" + b);
        if (w == witness.end()) continue;
        if (site == nullptr) site = &w->second;
        if (!detail.empty()) detail += ", ";
        detail += a + " -> " + b + " (" + w->second.file + ":" +
                  std::to_string(w->second.line) + ")";
      }
    }
    diags.push_back(Diagnostic{
        site ? site->file : "<graph>", site ? site->line : 0, "RQS101",
        "lock-order inversion cycle: " + detail,
        "pick one global acquisition order for these mutexes and make every "
        "path follow it"});
  }

  // De-duplicate (propagation can visit a call site once per held mutex).
  std::set<std::string> seen;
  for (const Diagnostic& d : diags) {
    const std::string key =
        d.rule + "|" + d.file + "|" + std::to_string(d.line) + "|" + d.message;
    if (!seen.insert(key).second) continue;
    out.push_back(d);
  }

  if (inventory != nullptr) {
    for (const auto& [name, where] : declared) {
      MutexInfo info;
      info.name = name;
      info.declared_at = where.first + ":" + std::to_string(where.second);
      // Exact canonical match, or same member name observed anywhere (the
      // scanner cannot always recover the owning class of `obj.member`).
      auto exact = acquisition_counts.find(name);
      if (exact != acquisition_counts.end()) {
        info.acquisitions = exact->second;
      } else {
        const std::string member = name.substr(name.rfind("::") + 2);
        for (const auto& [acq, count] : acquisition_counts) {
          if (acq.substr(acq.rfind("::") + 2) == member) info.acquisitions += count;
        }
      }
      inventory->push_back(std::move(info));
    }
  }
}

}  // namespace rqsim::analyze
