// rqsim-analyze CLI.
//
//   rqsim-analyze --root <repo-root> [--locks] [--list-rules]
//
// Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage / IO error.
// Registered as the `analyze` ctest (tier-1); scripts/lint.sh prefers this
// binary over the grep fallback when a build tree exists.
#include <cstring>
#include <iostream>
#include <string>

#include "analyzer.hpp"

namespace {

void print_rules() {
  std::cout <<
      "RQS001  raw state-buffer allocation outside sim/buffer_pool\n"
      "RQS002  RNG construction outside common/rng (incl. using-aliases)\n"
      "RQS003  std::thread outside the designated execution engines\n"
      "RQS004  monotonic clock use outside telemetry/ and common/\n"
      "RQS005  StateVector deep copy outside StateBufferPool/CowState\n"
      "RQS006  raw socket syscall outside service/ and router/\n"
      "RQS101  lock-order inversion cycle (incl. re-lock of a held mutex)\n"
      "RQS102  blocking call while holding a mutex\n"
      "RQS103  condition_variable::wait while holding another mutex\n"
      "RQS201  declared protocol verb not dispatched\n"
      "RQS202  Json::at(key) without a prior has(key) presence check\n"
      "\nSuppress in place with: // rqsim-analyze: allow(<rule>) <reason>\n";
}

}  // namespace

int main(int argc, char** argv) {
  rqsim::analyze::AnalyzerConfig config;
  bool want_locks = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      config.root = argv[++i];
    } else if (arg == "--locks") {
      want_locks = true;
      config.want_inventory = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rqsim-analyze --root <repo-root> [--locks] "
                   "[--list-rules]\n";
      return 0;
    } else {
      std::cerr << "rqsim-analyze: unknown argument " << arg << "\n";
      return 2;
    }
  }

  try {
    const rqsim::analyze::AnalysisResult result =
        rqsim::analyze::run_analysis(config);
    for (const auto& diag : result.diagnostics) {
      std::cout << rqsim::analyze::render(diag) << "\n";
    }
    if (want_locks) {
      std::cout << "-- mutex coverage (" << result.inventory.size()
                << " declared in the concurrency dirs) --\n";
      for (const auto& info : result.inventory) {
        std::cout << "  " << info.name << "  declared " << info.declared_at
                  << "  acquisitions " << info.acquisitions << "\n";
      }
    }
    std::cout << "rqsim-analyze: " << result.files_scanned
              << " files scanned, " << result.diagnostics.size()
              << " diagnostic(s)\n";
    return result.diagnostics.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
